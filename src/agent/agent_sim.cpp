#include "agent/agent_sim.h"

#include <stdexcept>

#include "rng/splitmix.h"

namespace antalloc {
namespace {

// Lays ants out to match the requested initial loads: the first loads[0]
// ants on task 0, the next loads[1] on task 1, ..., the rest idle.
std::vector<TaskId> initial_assignment(Count n_ants,
                                       std::span<const Count> loads) {
  std::vector<TaskId> assignment(static_cast<std::size_t>(n_ants), kIdle);
  std::size_t next = 0;
  for (std::size_t j = 0; j < loads.size(); ++j) {
    for (Count c = 0; c < loads[j]; ++c) {
      assignment[next++] = static_cast<TaskId>(j);
    }
  }
  return assignment;
}

}  // namespace

SimResult run_agent_sim(AgentAlgorithm& algo, FeedbackModel& fm,
                        const DemandSchedule& schedule,
                        const AgentSimConfig& cfg) {
  const std::int32_t k = schedule.num_tasks();
  if (k > kMaxAgentTasks) {
    throw std::invalid_argument("run_agent_sim: k exceeds kMaxAgentTasks");
  }
  std::vector<Count> loads(static_cast<std::size_t>(k), 0);
  if (!cfg.initial_loads.empty()) {
    if (cfg.initial_loads.size() != static_cast<std::size_t>(k)) {
      throw std::invalid_argument("run_agent_sim: initial_loads size");
    }
    loads = cfg.initial_loads;
  }
  // Validates that the loads fit within the colony.
  Allocation init(cfg.n_ants, loads);

  std::vector<TaskId> assignment = initial_assignment(cfg.n_ants, loads);
  std::vector<TaskId> prev_assignment = assignment;
  algo.reset(cfg.n_ants, k, assignment, cfg.seed);

  MetricsRecorder recorder(k, cfg.n_ants, cfg.metrics);
  std::vector<double> deficits(static_cast<std::size_t>(k), 0.0);
  rng::Xoshiro256 model_gen(rng::hash_combine(cfg.seed, 0xBEEFull));

  // Task lifecycle: the engine starts from the all-active assumption the
  // initial allocation was built under, and applies retire transitions at
  // every segment boundary where the active set changes (including round 1,
  // which flushes initial loads placed on tasks that are dormant from the
  // start). The flush is deterministic: workers of a dying task go straight
  // to kIdle.
  const bool lifecycle = schedule.has_lifecycle();
  ActiveSet current_active = ActiveSet::all(k);
  std::uint64_t active_mask = current_active.mask64();
  std::size_t prev_segment = static_cast<std::size_t>(-1);

  for (Round t = 1; t <= cfg.rounds; ++t) {
    // One segment lookup per round serves both the demands and (on segment
    // changes only) the active set.
    const std::size_t segment = schedule.segment_index_at(t);
    const DemandVector& demands = schedule.segment_demands(segment);
    std::int64_t flushed = 0;
    if (lifecycle && segment != prev_segment) {
      const ActiveSet& active = schedule.segment_active(segment);
      if (active != current_active) {
        // The retirement flush is its own switch event, part of round t's
        // count; the post-step diff below runs against the post-flush
        // snapshot. An ant that is flushed and immediately re-recruited
        // therefore counts twice (task -> idle -> task), the same
        // convention the aggregate kernels' apply_lifecycle + join
        // accounting produces.
        for (auto& a : assignment) {
          if (a != kIdle && !active[a]) {
            a = kIdle;
            ++flushed;
          }
        }
        algo.on_lifecycle(t, active);
        current_active = active;
        active_mask = current_active.mask64();
      }
    }
    prev_segment = segment;
    prev_assignment = assignment;
    // Feedback in round t reflects the loads at time t-1; dormant tasks are
    // outside the problem, so their deficit is pinned to zero (their
    // feedback is unconditionally overload regardless).
    for (std::int32_t j = 0; j < k; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      deficits[ju] = ((active_mask >> j) & 1)
                         ? static_cast<double>(demands[j] - loads[ju])
                         : 0.0;
    }
    fm.begin_round(t, deficits, demands.values(), model_gen);
    const FeedbackAccess fb(fm, t, deficits, demands.values(), cfg.seed,
                            active_mask);

    algo.step(t, fb, assignment);

    // Recompute loads and count exact switches.
    std::fill(loads.begin(), loads.end(), 0);
    std::int64_t switches = 0;
    for (std::size_t i = 0; i < assignment.size(); ++i) {
      const TaskId a = assignment[i];
      if (a != kIdle) ++loads[static_cast<std::size_t>(a)];
      if (a != prev_assignment[i]) ++switches;
    }
    recorder.record_round(RoundView{.t = t,
                                    .loads = loads,
                                    .demands = &demands,
                                    .active = &current_active,
                                    .switches = flushed + switches,
                                    .flushes = flushed});
  }
  return recorder.finish(loads);
}

SimResult run_agent_sim(AgentAlgorithm& algo, FeedbackModel& fm,
                        const DemandVector& demands,
                        const AgentSimConfig& cfg) {
  return run_agent_sim(algo, fm, DemandSchedule(demands), cfg);
}

}  // namespace antalloc
