#include "noise/feedback_model.h"

namespace antalloc {

void FeedbackModel::begin_round(Round /*t*/, std::span<const double> /*deficits*/,
                                std::span<const Count> /*demands*/,
                                rng::Xoshiro256& /*gen*/) {}

Feedback FeedbackModel::sample(Round t, TaskId j, std::int64_t /*ant*/,
                               double deficit, double demand,
                               rng::Xoshiro256& gen) const {
  const double p = lack_probability(t, j, deficit, demand);
  return gen.bernoulli(p) ? Feedback::kLack : Feedback::kOverload;
}

}  // namespace antalloc
