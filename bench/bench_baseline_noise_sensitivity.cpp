// E14 — Baseline comparison: the sharp-threshold baseline (our stand-in for
// the exact-feedback algorithm of [11], see DESIGN.md §5.2) against
// Algorithm Ant, across feedback models and execution models.
//
// Expected shape — the paper's motivation in one table:
//  * baseline, sequential + exact:   near-perfect (its home turf);
//  * baseline, synchronous + exact:  floods and oscillates at Θ(n) — even
//    noiseless synchronous feedback defeats naive reactivity;
//  * baseline, sequential + sigmoid: regret grows with the grey zone;
//  * Ant, synchronous + sigmoid:     stays within its 5γΣd band;
//  * Ant, synchronous + exact:       ditto (noise robustness is free).
#include "algo/sharp_threshold.h"
#include "algo/trivial.h"
#include "noise/exact.h"
#include "common.h"

using namespace antalloc;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const Count demand = args.get_int("demand", 2000);
  const std::int32_t k = static_cast<std::int32_t>(args.get_int("k", 2));
  const double lambda = args.get_double("lambda", 0.01);
  const double gamma = args.get_double("gamma", 0.05);
  args.check_unknown();

  const DemandVector demands = uniform_demands(k, demand);
  const Count n = 4 * demands.total();
  const double band =
      5.0 * gamma * static_cast<double>(demands.total()) + 3.0 * k;

  bench::print_header(
      "E14 / baseline: sharp-threshold [11]-style vs Algorithm Ant",
      "baseline wins only in its exact/sequential home turf; Ant is robust");
  bench::print_gamma_star(lambda, demands, n);
  std::printf("Ant band budget: %.0f per round\n\n", band);

  bench::BenchContext ctx("bench_baseline_noise_sensitivity",
                          {"algorithm", "model", "feedback", "avg_regret",
                           "verdict"});

  auto verdict = [&](double regret) {
    return regret <= band ? std::string("converged")
                          : std::string("oscillating/far");
  };

  // Baseline, sequential model.
  auto sequential = [&](FeedbackModel& fm) {
    std::vector<Count> loads(demands.values().begin(), demands.values().end());
    const Allocation init(n, loads);
    const Round rounds = 200'000;
    return run_reactive_sequential(
               ReactiveParams{.leave_probability =
                                  kSharpThresholdLeaveProbability},
               n, demands, rounds, fm, init,
               {.gamma = gamma, .warmup = rounds / 2}, 3)
        .post_warmup_average();
  };
  {
    ExactFeedback fm;
    const double r = sequential(fm);
    ctx.table.add_row({"sharp-threshold", "sequential", "exact",
                       Table::fmt(r, 5), verdict(r)});
    if (r > band) ctx.exit_code = 1;  // must converge here
  }
  {
    SigmoidFeedback fm(lambda);
    const double r = sequential(fm);
    ctx.table.add_row({"sharp-threshold", "sequential", "sigmoid",
                       Table::fmt(r, 5), verdict(r)});
  }

  // Synchronous model runs.
  auto synchronous = [&](const std::string& algo, const FeedbackModel& fm) {
    auto kernel = make_aggregate_kernel({.name = algo, .gamma = gamma});
    const Round rounds = 12'000;
    AggregateSimConfig sim{.n_ants = n,
                           .rounds = rounds,
                           .seed = 5,
                           .metrics = {.gamma = gamma, .warmup = rounds / 2}};
    return run_aggregate_sim(*kernel, fm, demands, sim).post_warmup_average();
  };
  {
    ExactFeedback fm;
    const double r = synchronous("sharp-threshold", fm);
    ctx.table.add_row({"sharp-threshold", "synchronous", "exact",
                       Table::fmt(r, 5), verdict(r)});
    if (r <= band) ctx.exit_code = 1;  // the flood must show
  }
  {
    SigmoidFeedback fm(lambda);
    const double r = synchronous("sharp-threshold", fm);
    ctx.table.add_row({"sharp-threshold", "synchronous", "sigmoid",
                       Table::fmt(r, 5), verdict(r)});
  }
  {
    ExactFeedback fm;
    const double r = synchronous("ant", fm);
    ctx.table.add_row(
        {"ant", "synchronous", "exact", Table::fmt(r, 5), verdict(r)});
    if (r > band) ctx.exit_code = 1;
  }
  {
    SigmoidFeedback fm(lambda);
    const double r = synchronous("ant", fm);
    ctx.table.add_row(
        {"ant", "synchronous", "sigmoid", Table::fmt(r, 5), verdict(r)});
    if (r > band) ctx.exit_code = 1;
  }
  return ctx.finish();
}
