#include <gtest/gtest.h>

#include "sim/scenario.h"

namespace antalloc {
namespace {

TEST(Scenario, DayNightFlips) {
  const auto day = uniform_demands(2, 100);
  const auto night = uniform_demands(2, 60);
  const auto s = day_night_schedule(day, night, 50, 200);
  EXPECT_EQ(s.demands_at(0)[0], 100);
  EXPECT_EQ(s.demands_at(49)[0], 100);
  EXPECT_EQ(s.demands_at(50)[0], 60);
  EXPECT_EQ(s.demands_at(100)[0], 100);
  EXPECT_EQ(s.demands_at(150)[0], 60);
  EXPECT_THROW(day_night_schedule(day, night, 0, 100), std::invalid_argument);
}

TEST(Scenario, SingleShockMultipliesTask0Only) {
  const auto base = uniform_demands(3, 100);
  const auto s = single_shock_schedule(base, 500, 2.0);
  EXPECT_EQ(s.demands_at(499)[0], 100);
  EXPECT_EQ(s.demands_at(500)[0], 200);
  EXPECT_EQ(s.demands_at(500)[1], 100);
  EXPECT_EQ(s.demands_at(500)[2], 100);
}

TEST(Scenario, StaircaseCompounds) {
  const auto base = uniform_demands(1, 100);
  const auto s = staircase_schedule(base, 100, 1.5, 3);
  EXPECT_EQ(s.demands_at(99)[0], 100);
  EXPECT_EQ(s.demands_at(100)[0], 150);
  EXPECT_EQ(s.demands_at(200)[0], 225);
  EXPECT_EQ(s.demands_at(300)[0], 338);  // round(337.5)
}

TEST(Scenario, MassDeathEquivalence) {
  const auto base = uniform_demands(1, 700);
  const auto s = mass_death_schedule(base, 100, 0.3);
  // 30% of the colony dying = demands growing by 1/0.7.
  EXPECT_EQ(s.demands_at(100)[0], 1000);
  EXPECT_THROW(mass_death_schedule(base, 100, 1.0), std::invalid_argument);
}

TEST(Scenario, StandardSuiteIsWellFormed) {
  const auto base = uniform_demands(4, 200);
  const auto scenarios = standard_scenarios(base, 10'000);
  EXPECT_GE(scenarios.size(), 6u);
  for (const auto& sc : scenarios) {
    EXPECT_FALSE(sc.name.empty());
    EXPECT_EQ(sc.schedule.num_tasks(), 4);
    EXPECT_FALSE(sc.initial.empty());
    // Every scenario must remain feasible for a colony with 2x slack.
    EXPECT_LE(sc.schedule.max_total(), 2 * base.total() * 2);
  }
}

}  // namespace
}  // namespace antalloc
