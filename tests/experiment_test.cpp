// Tests for the experiment façade: engine selection, replicated runs,
// deterministic seeding, and the extraction helpers.
#include <gtest/gtest.h>

#include "noise/sigmoid.h"
#include "sim/experiment.h"

namespace antalloc {
namespace {

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.algo.name = "ant";
  cfg.algo.gamma = 0.05;
  cfg.n_ants = 4000;
  cfg.rounds = 1000;
  cfg.seed = 5;
  cfg.metrics.gamma = 0.05;
  cfg.metrics.warmup = 500;
  return cfg;
}

TEST(Experiment, AggregateEngineRuns) {
  auto cfg = base_config();
  SigmoidFeedback fm(1.0);
  const DemandSchedule schedule(uniform_demands(2, 800));
  const auto res = run_experiment(cfg, fm, schedule);
  EXPECT_EQ(res.rounds, 1000);
  EXPECT_GT(res.total_regret, 0.0);
}

TEST(Experiment, AgentEngineRuns) {
  auto cfg = base_config();
  cfg.engine = "agent";
  cfg.n_ants = 400;
  SigmoidFeedback fm(1.0);
  const DemandSchedule schedule(uniform_demands(2, 80));
  const auto res = run_experiment(cfg, fm, schedule);
  EXPECT_EQ(res.rounds, 1000);
}

TEST(Experiment, UnknownEngineThrows) {
  auto cfg = base_config();
  cfg.engine = "quantum";
  SigmoidFeedback fm(1.0);
  const DemandSchedule schedule(uniform_demands(1, 100));
  EXPECT_THROW(run_experiment(cfg, fm, schedule), std::invalid_argument);
}

TEST(Experiment, InitialAllocationKindRespected) {
  auto cfg = base_config();
  cfg.initial = "adversarial";
  cfg.rounds = 1;  // one round: hostile start still visible in regret
  cfg.metrics.warmup = 0;
  SigmoidFeedback fm(1.0);
  const DemandSchedule schedule(uniform_demands(2, 800));
  const auto res = run_experiment(cfg, fm, schedule);
  // All 4000 ants on task 0 (demand 800): instantaneous regret near
  // |800-4000| + 800 at the start.
  EXPECT_GT(res.total_regret, 2000.0);
}

TEST(Experiment, ReplicatedRunsAreDeterministicAndDistinct) {
  auto cfg = base_config();
  const DemandSchedule schedule(uniform_demands(2, 800));
  const auto make_model = [] {
    return std::make_unique<SigmoidFeedback>(1.0);
  };
  const auto a = run_replicated_experiment(cfg, make_model, schedule, 4);
  const auto b = run_replicated_experiment(cfg, make_model, schedule, 4);
  ASSERT_EQ(a.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(a[i].total_regret, b[i].total_regret);
  }
  // Different replicates use different seeds.
  EXPECT_NE(a[0].total_regret, a[1].total_regret);
}

TEST(Experiment, ExtractionHelpers) {
  auto cfg = base_config();
  const DemandSchedule schedule(uniform_demands(2, 800));
  const auto results = run_replicated_experiment(
      cfg, [] { return std::make_unique<SigmoidFeedback>(1.0); }, schedule, 3);
  const auto averages = extract_post_warmup_average(results);
  ASSERT_EQ(averages.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(averages[i], results[i].post_warmup_average());
  }
  const auto closeness = extract_closeness(results, 0.05, 1600);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(closeness[i], averages[i] / (0.05 * 1600.0));
  }
}

TEST(Experiment, MetricsGammaDefaultsToAlgoGamma) {
  auto cfg = base_config();
  cfg.metrics.gamma = 0.0;  // sentinel: inherit from the algorithm
  SigmoidFeedback fm(1.0);
  const DemandSchedule schedule(uniform_demands(1, 800));
  // Would throw inside MetricsRecorder math only if gamma stayed 0 and the
  // bands degenerated; mostly this checks the run completes sanely.
  const auto res = run_experiment(cfg, fm, schedule);
  EXPECT_GT(res.rounds, 0);
}

}  // namespace
}  // namespace antalloc
