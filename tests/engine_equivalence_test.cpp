// Distributional-equivalence property tests: the aggregate kernel of each
// algorithm must induce the same law on the load process as the per-ant
// simulation. We compare replicate means of (a) steady-state loads and
// (b) average regret, with tolerances derived from the replicate spread.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "aggregate/aggregate_sim.h"
#include "agent/agent_sim.h"
#include "algo/registry.h"
#include "noise/adversarial.h"
#include "noise/sigmoid.h"
#include "parallel/trial_runner.h"
#include "stats/summary.h"

namespace antalloc {
namespace {

struct EquivalenceCase {
  std::string algo;
  std::string noise;  // "sigmoid" or "adversarial"
  double gamma;
  Round rounds;
};

std::unique_ptr<FeedbackModel> make_noise(const std::string& kind) {
  if (kind == "sigmoid") return std::make_unique<SigmoidFeedback>(0.5);
  return std::make_unique<AdversarialFeedback>(0.03, make_honest_adversary());
}

class EngineEquivalence : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(EngineEquivalence, MeansAgree) {
  const auto param = GetParam();
  constexpr Count kAnts = 2000;
  const DemandVector demands({Count{400}, Count{300}});
  constexpr int kReplicates = 12;

  AlgoConfig algo_cfg;
  algo_cfg.name = param.algo;
  algo_cfg.gamma = param.gamma;
  algo_cfg.epsilon = 0.5;

  const Round warmup = param.rounds / 2;

  RunningStats agent_load0;
  RunningStats agent_regret;
  const auto agent_results = run_sim_trials(
      kReplicates, 1000, [&](std::int64_t, std::uint64_t seed) {
        auto algo = make_agent_algorithm(algo_cfg);
        auto fm = make_noise(param.noise);
        AgentSimConfig cfg{.n_ants = kAnts,
                           .rounds = param.rounds,
                           .seed = seed,
                           .metrics = {.gamma = param.gamma, .warmup = warmup}};
        return run_agent_sim(*algo, *fm, demands, cfg);
      });
  for (const auto& r : agent_results) {
    agent_load0.add(static_cast<double>(r.final_loads[0]));
    agent_regret.add(r.post_warmup_average());
  }

  RunningStats agg_load0;
  RunningStats agg_regret;
  const auto agg_results = run_sim_trials(
      kReplicates, 2000, [&](std::int64_t, std::uint64_t seed) {
        auto kernel = make_aggregate_kernel(algo_cfg);
        auto fm = make_noise(param.noise);
        AggregateSimConfig cfg{.n_ants = kAnts,
                               .rounds = param.rounds,
                               .seed = seed,
                               .metrics = {.gamma = param.gamma,
                                           .warmup = warmup}};
        return run_aggregate_sim(*kernel, *fm, demands, cfg);
      });
  for (const auto& r : agg_results) {
    agg_load0.add(static_cast<double>(r.final_loads[0]));
    agg_regret.add(r.post_warmup_average());
  }

  // Tolerance: 4x the combined standard error plus a small absolute floor
  // (the two engines cannot be bitwise equal — different RNG pathways).
  const double load_tol =
      4.0 * std::sqrt(agent_load0.stderr_mean() * agent_load0.stderr_mean() +
                      agg_load0.stderr_mean() * agg_load0.stderr_mean()) +
      6.0;
  EXPECT_NEAR(agent_load0.mean(), agg_load0.mean(), load_tol)
      << param.algo << "/" << param.noise;

  const double regret_tol =
      4.0 * std::sqrt(agent_regret.stderr_mean() * agent_regret.stderr_mean() +
                      agg_regret.stderr_mean() * agg_regret.stderr_mean()) +
      0.15 * std::max(agent_regret.mean(), agg_regret.mean()) + 3.0;
  EXPECT_NEAR(agent_regret.mean(), agg_regret.mean(), regret_tol)
      << param.algo << "/" << param.noise;
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, EngineEquivalence,
    ::testing::Values(
        EquivalenceCase{"ant", "sigmoid", 0.05, 1200},
        EquivalenceCase{"ant", "adversarial", 0.05, 1200},
        EquivalenceCase{"trivial", "sigmoid", 0.05, 600},
        EquivalenceCase{"sharp-threshold", "sigmoid", 0.05, 600},
        EquivalenceCase{"precise-sigmoid", "sigmoid", 0.05, 1640},
        EquivalenceCase{"precise-adversarial", "adversarial", 0.05, 1600}),
    [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
      std::string name = info.param.algo + "_" + info.param.noise;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace antalloc
