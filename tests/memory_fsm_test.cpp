// Tests for the memory-budget machinery (Theorem 3.3 experiment support).
#include <gtest/gtest.h>

#include "agent/memory_fsm.h"
#include "algo/ant.h"
#include "algo/precise_sigmoid.h"

namespace antalloc {
namespace {

TEST(BitsForWindow, GrowsLogarithmically) {
  EXPECT_EQ(bits_for_window(1), kControlBits + 1);
  // m = 3: counter range [0,3] -> 2 bits.
  EXPECT_EQ(bits_for_window(3), kControlBits + 2);
  EXPECT_EQ(bits_for_window(255), kControlBits + 8);
  EXPECT_THROW(bits_for_window(0), std::invalid_argument);
}

TEST(MemoryBudget, MaxWindowIsOddAndMonotone) {
  std::int32_t prev = 0;
  for (int bits = 3; bits <= 16; ++bits) {
    const MemoryBudget budget{bits};
    const auto m = budget.max_window();
    EXPECT_EQ(m % 2, 1) << bits;
    EXPECT_GE(m, prev) << bits;
    // The produced window must itself fit the budget.
    EXPECT_LE(bits_for_window(m), bits) << bits;
    prev = m;
  }
}

TEST(MemoryBudget, EpsilonRegimes) {
  // Tiny budgets cannot run a median window at all.
  EXPECT_GE(MemoryBudget{3}.epsilon_for(10.0), 1.0);
  EXPECT_GE(MemoryBudget{4}.epsilon_for(10.0), 1.0);
  // Larger budgets buy geometrically smaller epsilon.
  const double e8 = MemoryBudget{8}.epsilon_for(10.0);
  const double e12 = MemoryBudget{12}.epsilon_for(10.0);
  ASSERT_LT(e8, 1.0);
  EXPECT_LT(e12, e8);
  EXPECT_NEAR(e8 / e12, 16.0, 3.0);  // 4 extra bits ~ 16x finer
}

TEST(MemoryFactories, FallBackToAntWhenBudgetTiny) {
  const auto agent = make_memory_limited_agent(MemoryBudget{3}, 0.05);
  EXPECT_EQ(agent->name(), "ant");
  const auto kernel = make_memory_limited_kernel(MemoryBudget{3}, 0.05);
  EXPECT_EQ(kernel->name(), "ant");
}

TEST(MemoryFactories, UsePreciseSigmoidWhenBudgetAllows) {
  const auto agent = make_memory_limited_agent(MemoryBudget{10}, 0.05);
  EXPECT_EQ(agent->name(), "precise-sigmoid");
  const auto kernel = make_memory_limited_kernel(MemoryBudget{10}, 0.05);
  EXPECT_EQ(kernel->name(), "precise-sigmoid");
  // The configured window must respect the budget.
  const auto* ps = dynamic_cast<PreciseSigmoidAggregate*>(kernel.get());
  ASSERT_NE(ps, nullptr);
  EXPECT_LE(bits_for_window(ps->params().window()), 10 + 1);
}

TEST(MemoryFactories, EffectiveEpsilonMatchesBudget) {
  const MemoryBudget b{12};
  EXPECT_DOUBLE_EQ(effective_epsilon(b), b.epsilon_for(10.0));
}

}  // namespace
}  // namespace antalloc
