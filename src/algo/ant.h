// Algorithm Ant (paper §4, Theorem 3.1).
//
// Phases of two rounds. In the odd round every ant takes a first sample s1
// of its task's feedback and each *working* ant pauses for the rest of the
// phase with probability cs·γ — this spaces the two samples ~cs·γ·W apart so
// at least one of them lands outside the grey zone. In the even round every
// ant takes the second sample s2 of the (now reduced) load and then:
//   * a working ant whose own-task samples were both overload leaves
//     permanently with probability γ/cd;
//   * an idle ant joins a task drawn uniformly among those whose two samples
//     were both lack (if any).
// Constants cs = 2.4, cd = 19 (see RegretBands in metrics/regret.h for why
// 2.4; both are configurable).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "algo/algorithm.h"

namespace antalloc {

class AntBatchedRunner;  // algo/ant_batched.h

struct AntParams {
  double gamma = 0.02;  // learning rate γ in [γ*, 1/16]
  double cs = 2.4;      // temporary-pause constant
  double cd = 19.0;     // permanent-leave damping constant

  double pause_probability() const { return cs * gamma; }
  double leave_probability() const { return gamma / cd; }
};

// Per-ant automaton. State per ant: current task (the task it is committed
// to for the phase) and the lack-bitmask of its first sample — constant
// memory, matching the paper's model.
class AntAgent final : public AgentAlgorithm {
 public:
  explicit AntAgent(AntParams params);
  ~AntAgent() override;

  std::string_view name() const override { return "ant"; }
  const AntParams& params() const { return params_; }

  void reset(Count n_ants, std::int32_t k, std::span<const TaskId> initial,
             std::uint64_t seed) override;
  void step(Round t, const FeedbackAccess& fb, std::span<const TaskId> prev,
            std::span<TaskId> next) override;
  // Drops phase commitments to dying tasks: a flushed worker's first-sample
  // mask is cleared, so it cannot join anything before the next phase start.
  void on_lifecycle(Round t, const ActiveSet& active) override;
  // Count-level fast path (algo/ant_batched.h), lazily constructed.
  BatchedAgentRunner* batched_runner() override;

 private:
  AntParams params_;
  std::uint64_t seed_ = 0;
  std::int32_t k_ = 0;
  std::vector<TaskId> current_task_;     // task committed to this phase
  std::vector<std::uint64_t> s1_lack_;   // first-sample lack bitmask
  std::unique_ptr<AntBatchedRunner> batched_;
};

// Exact count-level kernel (i.i.d. feedback only). Internal classes per
// task: assigned (committed) ants, of which `paused` sit out the even round;
// plus the idle pool.
class AntAggregate final : public AggregateKernel {
 public:
  explicit AntAggregate(AntParams params);

  std::string_view name() const override { return "ant"; }
  const AntParams& params() const { return params_; }

  void reset(const Allocation& initial, std::uint64_t seed) override;
  RoundOutput step(Round t, const DemandVector& demands,
                   const FeedbackModel& fm) override;
  Count apply_lifecycle(Round t, const ActiveSet& active) override;

 private:
  AntParams params_;
  rng::Xoshiro256 gen_;
  Count idle_ = 0;
  // Ants flushed off dying tasks; they re-enter the idle (joinable) pool at
  // the next phase start, matching the agent automaton where a mid-phase
  // flush clears the first-sample mask and blocks joins until the phase ends.
  Count flushed_ = 0;
  std::vector<Count> assigned_;   // committed ants per task (incl. paused)
  std::vector<Count> paused_;     // temporarily idle this phase
  std::vector<Count> visible_;    // W(j)_t returned to the engine
  std::vector<Count> prev_visible_;  // W(j)_{t-1}, what round-t feedback sees
  std::vector<double> p1_lack_;   // first-sample lack probability per task
  std::vector<double> scratch_;
  std::vector<std::uint8_t> task_active_;  // lifecycle flags (1 = active)
};

}  // namespace antalloc
