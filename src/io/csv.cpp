#include "io/csv.h"

#include <stdexcept>

namespace antalloc {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     std::span<const std::string> columns)
    : path_(path), out_(path), columns_(columns.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c != 0) out_ << ',';
    out_ << columns[c];
  }
  out_ << '\n';
}

void CsvWriter::write_row(std::span<const double> values) {
  if (values.size() != columns_) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  for (std::size_t c = 0; c < values.size(); ++c) {
    if (c != 0) out_ << ',';
    out_ << values[c];
  }
  out_ << '\n';
}

void CsvWriter::write_row(std::span<const std::string> cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c != 0) out_ << ',';
    out_ << cells[c];
  }
  out_ << '\n';
}

std::string write_csv(const std::string& path,
                      std::span<const std::string> columns,
                      std::span<const std::vector<double>> rows) {
  CsvWriter writer(path, columns);
  for (const auto& row : rows) writer.write_row(row);
  return path;
}

}  // namespace antalloc
