// Property-style parameterized sweeps for the precise algorithms, mirroring
// the AntConvergence grid: across (ε, γ, k, noise), a warm-started colony
// must (a) stay stationary at its operating point, (b) keep the average
// regret below the corresponding theorem's budget, and (c) preserve the
// regret-decomposition identity.
#include <gtest/gtest.h>

#include <string>

#include "aggregate/aggregate_sim.h"
#include "algo/precise_adversarial.h"
#include "algo/precise_sigmoid.h"
#include "algo/registry.h"
#include "noise/adversarial.h"
#include "noise/sigmoid.h"

namespace antalloc {
namespace {

struct PreciseCase {
  std::string algo;  // "precise-sigmoid" or "precise-adversarial"
  double gamma;
  double epsilon;
  std::int32_t k;
};

class PreciseConvergence : public ::testing::TestWithParam<PreciseCase> {};

TEST_P(PreciseConvergence, WarmStartIsStationaryAndWithinBudget) {
  const auto param = GetParam();
  const Count demand = 40'000;
  const DemandVector demands = uniform_demands(param.k, demand);
  const Count n = 4 * demands.total();

  AlgoConfig cfg{.name = param.algo,
                 .gamma = param.gamma,
                 .epsilon = param.epsilon};
  auto kernel = make_aggregate_kernel(cfg);

  Round phase = 0;
  Count warm = 0;
  std::unique_ptr<FeedbackModel> fm;
  double budget = 0.0;
  if (param.algo == "precise-sigmoid") {
    const PreciseSigmoidParams p{.gamma = param.gamma,
                                 .epsilon = param.epsilon};
    phase = p.phase_length();
    const double step = param.epsilon * param.gamma / p.cchi;
    warm = static_cast<Count>(static_cast<double>(demand) *
                              (1.0 + 2.0 * step));
    fm = std::make_unique<SigmoidFeedback>(0.05);
    // Theorem 3.2 budget with unit constant.
    budget = param.epsilon * param.gamma *
             static_cast<double>(demands.total());
  } else {
    const PreciseAdversarialParams p{.gamma = param.gamma,
                                     .epsilon = param.epsilon};
    phase = p.phase_length();
    warm = static_cast<Count>(static_cast<double>(demand) *
                              (1.0 + param.gamma));
    fm = std::make_unique<AdversarialFeedback>(0.02, make_honest_adversary());
    // Theorem 3.6 budget.
    budget = (1.0 + param.epsilon) * param.gamma *
             static_cast<double>(demands.total());
  }

  const Round rounds = 80 * phase;
  AggregateSimConfig sim{
      .n_ants = n,
      .rounds = rounds,
      .seed = 1001,
      .metrics = {.gamma = param.gamma, .warmup = rounds / 2},
      .initial_loads = std::vector<Count>(static_cast<std::size_t>(param.k),
                                          warm)};
  const auto res = run_aggregate_sim(*kernel, *fm, demands, sim);

  // (a) stationarity: final loads near the warm start.
  for (std::int32_t j = 0; j < param.k; ++j) {
    EXPECT_NEAR(
        static_cast<double>(res.final_loads[static_cast<std::size_t>(j)]),
        static_cast<double>(warm), 0.5 * param.gamma * demand + 50.0)
        << param.algo << " eps=" << param.epsilon << " task " << j;
  }
  // (b) regret within the theorem budget.
  EXPECT_LT(res.post_warmup_average(), budget)
      << param.algo << " eps=" << param.epsilon;
  // (c) decomposition identity.
  EXPECT_NEAR(res.total_regret,
              res.regret_plus + res.regret_near + res.regret_minus,
              1e-6 * (1.0 + res.total_regret));
}

std::string precise_name(
    const ::testing::TestParamInfo<PreciseCase>& info) {
  std::string name = info.param.algo + "_g" +
                     std::to_string(static_cast<int>(info.param.gamma * 1000)) +
                     "_e" +
                     std::to_string(static_cast<int>(info.param.epsilon * 1000)) +
                     "_k" + std::to_string(info.param.k);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    SigmoidGrid, PreciseConvergence,
    ::testing::Values(PreciseCase{"precise-sigmoid", 0.2, 0.5, 1},
                      PreciseCase{"precise-sigmoid", 0.2, 0.25, 1},
                      PreciseCase{"precise-sigmoid", 0.2, 0.5, 2},
                      PreciseCase{"precise-sigmoid", 0.1, 0.5, 1}),
    precise_name);

INSTANTIATE_TEST_SUITE_P(
    AdversarialGrid, PreciseConvergence,
    ::testing::Values(PreciseCase{"precise-adversarial", 0.05, 0.5, 1},
                      PreciseCase{"precise-adversarial", 0.05, 0.25, 1},
                      PreciseCase{"precise-adversarial", 0.05, 0.5, 2},
                      PreciseCase{"precise-adversarial", 0.0625, 0.5, 1}),
    precise_name);

}  // namespace
}  // namespace antalloc
