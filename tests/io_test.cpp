#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/args.h"
#include "io/csv.h"
#include "io/table.h"

namespace antalloc {
namespace {

TEST(Table, RenderAligned) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, Markdown) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string md = t.render_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"x"});
  t.add_row({"with,comma"});
  t.add_row({"with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, Validation) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::fmt(std::int64_t{42}), "42");
  EXPECT_EQ(Table::fmt(1.5, 3), "1.5");
  EXPECT_EQ(Table::fmt(0.000123456, 3), "0.000123");
}

TEST(Csv, WriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "/antalloc_csv_test.csv";
  {
    const std::vector<std::string> cols{"a", "b"};
    CsvWriter w(path, cols);
    w.write_row(std::vector<double>{1.0, 2.5});
    w.write_row(std::vector<std::string>{"x", "y"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::remove(path.c_str());
}

TEST(Csv, RowWidthChecked) {
  const std::string path = ::testing::TempDir() + "/antalloc_csv_width.csv";
  const std::vector<std::string> cols{"a", "b"};
  CsvWriter w(path, cols);
  EXPECT_THROW(w.write_row(std::vector<double>{1.0}), std::invalid_argument);
  std::remove(path.c_str());
}

Args make_args(std::vector<std::string> tokens) {
  static std::vector<std::string> storage;
  storage = std::move(tokens);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  argv.reserve(storage.size());
  for (auto& s : storage) argv.push_back(s.data());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, ParsesBothSyntaxes) {
  auto args = make_args({"--n=100", "--gamma", "0.25", "--verbose"});
  EXPECT_EQ(args.get_int("n", 1), 100);
  EXPECT_DOUBLE_EQ(args.get_double("gamma", 0.0), 0.25);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get_string("mode", "auto"), "auto");  // default
  args.check_unknown();
}

TEST(Args, UnknownFlagDetected) {
  auto args = make_args({"--typo=1"});
  args.get_int("n", 1);
  EXPECT_THROW(args.check_unknown(), std::invalid_argument);
}

TEST(Args, RejectsPositional) {
  EXPECT_THROW(make_args({"positional"}), std::invalid_argument);
}

TEST(Args, BooleanSpellings) {
  auto args = make_args({"--a=yes", "--b=off", "--c=true"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
}

TEST(Args, HelpListsDeclaredFlags) {
  auto args = make_args({});
  args.get_int("rounds", 50);
  args.get_double("gamma", 0.1);
  const std::string help = args.help();
  EXPECT_NE(help.find("--rounds=50"), std::string::npos);
  EXPECT_NE(help.find("--gamma"), std::string::npos);
}

}  // namespace
}  // namespace antalloc
