#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace antalloc {

Histogram::Histogram(double lo, double hi, std::int32_t bins)
    : lo_(lo), hi_(hi), counts_(static_cast<std::size_t>(bins), 0) {
  if (!(hi > lo) || bins <= 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::int64_t>(std::floor((x - lo_) / width));
  bin = std::clamp<std::int64_t>(bin, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (const double x : xs) add(x);
}

double Histogram::bin_lo(std::int32_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

std::string Histogram::render(std::int32_t max_width) const {
  std::int64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::int32_t b = 0; b < num_bins(); ++b) {
    const auto bars = static_cast<std::int32_t>(
        (count(b) * max_width + peak - 1) / peak);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[%10.2f, %10.2f) %10lld ", bin_lo(b),
                  bin_hi(b), static_cast<long long>(count(b)));
    out << buf << std::string(static_cast<std::size_t>(count(b) > 0 ? bars : 0),
                              '#')
        << '\n';
  }
  return out.str();
}

}  // namespace antalloc
