#include <gtest/gtest.h>

#include "algo/registry.h"

namespace antalloc {
namespace {

TEST(Registry, AllNamesConstructAgents) {
  for (const auto& name : algorithm_names()) {
    AlgoConfig cfg;
    cfg.name = name;
    cfg.gamma = 0.05;
    cfg.epsilon = 0.5;
    const auto agent = make_agent_algorithm(cfg);
    ASSERT_NE(agent, nullptr) << name;
    EXPECT_EQ(agent->name(), name);
    if (has_aggregate_kernel(name)) {
      const auto kernel = make_aggregate_kernel(cfg);
      ASSERT_NE(kernel, nullptr) << name;
      EXPECT_EQ(kernel->name(), name);
    } else {
      EXPECT_THROW(make_aggregate_kernel(cfg), std::invalid_argument) << name;
    }
  }
}

TEST(Registry, InModelNamesAreASubset) {
  const auto all = algorithm_names();
  for (const auto& name : in_model_algorithm_names()) {
    EXPECT_NE(std::find(all.begin(), all.end(), name), all.end()) << name;
    EXPECT_NE(name, "oracle");
    EXPECT_NE(name, "threshold");
  }
}

TEST(Registry, UnknownNameThrows) {
  AlgoConfig cfg;
  cfg.name = "no-such-algorithm";
  EXPECT_THROW(make_agent_algorithm(cfg), std::invalid_argument);
  EXPECT_THROW(make_aggregate_kernel(cfg), std::invalid_argument);
}

TEST(Registry, ParametersAreForwarded) {
  AlgoConfig cfg;
  cfg.name = "precise-sigmoid";
  cfg.gamma = 0.03;
  cfg.epsilon = 0.25;
  cfg.verbatim_leave_probability = true;
  // Construction succeeding with these params is the contract; a wrong
  // forwarding (e.g. epsilon=0) would throw.
  EXPECT_NO_THROW(make_agent_algorithm(cfg));
  cfg.epsilon = 0.0;
  EXPECT_THROW(make_agent_algorithm(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace antalloc
