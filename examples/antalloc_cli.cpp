// antalloc_cli: a general simulator driver — pick the algorithm, noise
// model and colony shape from flags, get a summary table and an ASCII
// deficit plot; or run a whole scenario × algorithm campaign matrix,
// optionally as one shard of a distributed run. The fastest way to poke at
// the system interactively.
//
//   ./build/examples/antalloc_cli --algo=ant --n=65536 --k=4 --demand=4000 --lambda=0.2 --rounds=8000 --gamma=0.05 --plot=true
//   ./build/examples/antalloc_cli --algo=precise-adversarial --noise=adv --adversary=anti-gradient --gamma_ad=0.02
//   ./build/examples/antalloc_cli --campaign=true --scenarios=all --algos=ant,trivial --replicates=4 --csv=campaign.csv
//   ./build/examples/antalloc_cli --campaign=true --scenarios=all --algos=ant --metrics=regret,convergence,oscillation
//   ./build/examples/antalloc_cli --campaign=true --scenarios=all --algos=ant --shard=0/3 --out=shards/
//   ./build/examples/antalloc_cli --merge=shards/ --csv=merged.csv
//   ./build/examples/antalloc_cli --rounds=3000 --trace-out=run.trace
//   ./build/examples/antalloc_cli --replay=run.trace --metrics=regret,oscillation
//   ./build/examples/antalloc_cli --campaign=true --scenarios=all --algos=ant --trace-dir=traces/
//   ./build/examples/antalloc_cli --list-scenarios   (or --list-algos, --list-metrics)
//
// Sharding: --shard=i/N runs only the cells shard i owns and --out writes
// them as a CSV/manifest pair; run all N shards (any machines, any order),
// collect the pairs into one directory, and --merge reassembles the full
// campaign bit-identical to an unsharded run. See docs/CAMPAIGNS.md.
//
// Tracing: --trace-out writes a single run's per-round stream as a binary
// trace; --replay re-drives any metric selection over a trace from disk,
// scalar-for-scalar bit-equal to the live run; --trace-dir persists one
// trace per campaign replicate (the shard results.csv is then replayed from
// them instead of held in memory). See the trace-subsystem section of
// docs/ARCHITECTURE.md.
#include <cstdio>
#include <fstream>
#include <memory>

#include "io/args.h"
#include "io/campaign_io.h"
#include "io/plot.h"
#include "io/table.h"
#include "io/trace_log.h"
#include "io/trace_reader.h"
#include "metrics/convergence.h"
#include "net/server.h"
#include "parallel/task_graph.h"
#include "sim/campaign.h"

#include "fleet_modes.h"
#include "job_flags.h"

using namespace antalloc;

namespace {

// --progress=true: stream per-cell completions to stderr as the
// work-stealing campaign retires them (completion order, not flat order).
// stdout stays clean for tables and CSV.
class StderrCampaignProgress : public CampaignProgress {
 public:
  void on_cell_done(const Update& u) override {
    std::fprintf(stderr,
                 "[campaign] cell %llu done  %llu/%llu cells, %llu in "
                 "flight, %lld replicates, %llu steals\n",
                 static_cast<unsigned long long>(u.flat_index),
                 static_cast<unsigned long long>(u.cells_done),
                 static_cast<unsigned long long>(u.cells_total),
                 static_cast<unsigned long long>(u.cells_in_flight),
                 static_cast<long long>(u.replicates_done),
                 static_cast<unsigned long long>(u.steals));
  }
};

std::string default_metrics_label() {
  std::string names;
  for (const auto& m : default_metric_names()) {
    if (!names.empty()) names += ",";
    names += m;
  }
  return names;
}

ShardSpec parse_shard(const std::string& s) {
  try {
    const std::size_t slash = s.find('/');
    if (slash == std::string::npos) throw std::invalid_argument(s);
    std::size_t index_end = 0;
    std::size_t count_end = 0;
    ShardSpec spec;
    spec.index = std::stoull(s.substr(0, slash), &index_end);
    spec.count = std::stoull(s.substr(slash + 1), &count_end);
    if (index_end != slash || count_end != s.size() - slash - 1) {
      throw std::invalid_argument(s);
    }
    return spec;
  } catch (const std::exception&) {
    throw std::invalid_argument("--shard expects i/N (e.g. 0/3), got '" + s +
                                "'");
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const std::string algo_name = args.get_string("algo", "ant");
  const std::string engine_name = args.get_string("engine", "auto");
  const std::string sampling_name = args.get_string("sampling", "batched");
  const std::string initial_name = args.get_string("initial", "idle");
  const Count n = args.get_int("n", 1 << 16);
  const auto k = static_cast<std::int32_t>(args.get_int("k", 4));
  const Count demand = args.get_int("demand", 4000);
  const DemandVector demands = uniform_demands(k, demand);
  // Noise flags + learning-rate defaulting, shared with antalloc_client
  // submit (examples/job_flags.h) so both paths resolve identical configs.
  NoiseFlags noise_flags;
  try {
    noise_flags = parse_noise_flags(args, demands);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  const double gamma = noise_flags.gamma;
  const double epsilon = noise_flags.epsilon;
  const Round rounds = args.get_int("rounds", 8000);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const bool plot = args.get_bool("plot", true);
  const bool campaign_mode = args.get_bool("campaign", false);
  const auto serve_port = args.get_int("serve", -1);
  const auto coordinate_port = args.get_int("coordinate", -1);
  const std::string work_for = args.get_string("work-for", "");
  // Declared here for help()/check_unknown(); campaign mode re-reads them
  // through parse_job_spec (examples/job_flags.h).
  (void)args.get_string("scenarios", "all");
  (void)args.get_string("algos", "ant");
  const auto replicates = args.get_int("replicates", 2);
  const std::string csv_path = args.get_string("csv", "");
  const std::string shard_flag = args.get_string("shard", "");
  const std::string out_dir = args.get_string("out", "");
  const std::string merge_dir = args.get_string("merge", "");
  const std::string metrics_flag = args.get_string("metrics", "");
  const std::string trace_out = args.get_string("trace-out", "");
  const std::string replay_path = args.get_string("replay", "");
  const std::string trace_dir = args.get_string("trace-dir", "");
  const auto jobs = args.get_int("jobs", -1);
  const bool show_progress = args.get_bool("progress", false);
  const bool list_scenarios = args.get_bool("list-scenarios", false);
  const bool list_algos = args.get_bool("list-algos", false);
  const bool list_metrics = args.get_bool("list-metrics", false);
  const bool help = args.get_bool("help", false);
  if (help) {
    std::printf("%s\n", args.help().c_str());
    std::printf("algos:");
    for (const auto& a : algorithm_names()) std::printf(" %s", a.c_str());
    std::printf("  (--list-algos for descriptions)\n");
    std::printf("scenarios (--campaign=true; --scenarios=all or a comma "
                "list):\n");
    for (const auto& s : scenario_names()) {
      std::printf("  %-18s %s\n", s.c_str(),
                  std::string(scenario_description(s)).c_str());
    }
    std::printf("noise: sigmoid | adv | exact; engine: auto | agent | "
                "aggregate; initial: idle | uniform | adversarial | random\n");
    std::printf("sampling (agent engine): batched (default, bulk-count fast "
                "path) | per-ant (legacy golden-traced stream)\n");
    std::printf("metrics: --metrics=a,b,c selects streaming metrics "
                "(--list-metrics for the registry; default: %s)\n",
                default_metrics_label().c_str());
    std::printf("sharding: --shard=i/N --out=DIR to run and persist one "
                "shard, --merge=DIR to reassemble (docs/CAMPAIGNS.md)\n");
    std::printf("tracing: --trace-out=FILE (single run) or --trace-dir=DIR "
                "(campaign, one trace per replicate) write binary traces; "
                "--replay=FILE re-drives --metrics over a trace\n");
    std::printf("parallelism: --jobs=N pins the executor width for every "
                "mode (campaign and single runs; 0 = hardware concurrency, "
                "the default); --progress=true streams per-cell campaign "
                "completions to stderr\n");
    std::printf("service: --serve=PORT runs the daemon loop (0 = ephemeral "
                "port; see docs/SERVICE.md and examples/antalloc_client)\n");
    std::printf("fleet: --coordinate=PORT serves a worker fleet over this "
                "process's campaign flags; --work-for=HOST:PORT joins one "
                "(docs/FLEET.md)\n");
    return 0;
  }

  // Fleet modes (docs/FLEET.md) dispatch BEFORE check_unknown: they read
  // their own extra flags (--journal, --name, ...) and check afterwards.
  if (coordinate_port >= 0) {
    try {
      return run_coordinator_mode(args, static_cast<int>(coordinate_port));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  if (!work_for.empty()) {
    if (jobs >= 0) {
      set_global_task_graph_threads(static_cast<std::size_t>(jobs));
    }
    const std::size_t colon = work_for.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "error: --work-for expects HOST:PORT\n");
      return 2;
    }
    try {
      return run_worker_mode(args, work_for.substr(0, colon),
                             std::stoi(work_for.substr(colon + 1)));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  args.check_unknown();

  // Pin the executor width before anything parallel runs: the global
  // work-stealing graph is built lazily on first use, and --jobs must win
  // that race. Thread count never changes any result — only wall-clock.
  if (jobs >= 0) {
    set_global_task_graph_threads(static_cast<std::size_t>(jobs));
  }

  // Service mode: the same process as a long-running daemon — accept jobs
  // over the wire (docs/SERVICE.md), run them on the same global executor,
  // stream live feeds. antalloc_daemon is this loop as its own binary.
  if (serve_port >= 0) {
    if (serve_port > 65535) {
      std::fprintf(stderr, "error: --serve port must be in [0, 65535]\n");
      return 2;
    }
    DaemonOptions opts;
    opts.port = static_cast<std::uint16_t>(serve_port);
    block_termination_signals();
    DaemonServer server(opts);
    server.start();
    std::printf("antalloc daemon listening on 127.0.0.1:%u\n", server.port());
    std::fflush(stdout);
    wait_for_termination();
    server.stop();
    return 0;
  }

  // Registry listings: the discoverability entry points (no run needed).
  if (list_scenarios || list_algos || list_metrics) {
    bool printed = false;
    if (list_algos) {
      std::printf("registered algorithms:\n");
      for (const auto& a : algorithm_names()) {
        std::printf("  %-20s %s%s\n", a.c_str(),
                    std::string(algorithm_description(a)).c_str(),
                    has_aggregate_kernel(a) ? "" : " [agent engine only]");
      }
      printed = true;
    }
    if (list_scenarios) {
      if (printed) std::printf("\n");
      std::printf("registered scenario families:\n");
      for (const auto& s : scenario_names()) {
        std::printf("  %-20s %s\n", s.c_str(),
                    std::string(scenario_description(s)).c_str());
      }
      printed = true;
    }
    if (list_metrics) {
      if (printed) std::printf("\n");
      std::printf("registered metrics (--metrics=a,b,c; default %s):\n",
                  default_metrics_label().c_str());
      for (const auto& m : metric_names()) {
        std::string scalars;
        for (const auto& spec : metric_scalars(m)) {
          if (!scalars.empty()) scalars += ", ";
          scalars += spec.name;
        }
        std::printf("  %-16s %s\n  %16s scalars: %s\n", m.c_str(),
                    std::string(metric_description(m)).c_str(), "",
                    scalars.c_str());
      }
    }
    return 0;
  }

  // Merge mode: reassemble a sharded campaign from a directory of shard
  // CSV/manifest pairs. Refuses mismatched or incomplete shard sets.
  if (!merge_dir.empty()) {
    const MergedCampaign merged = merge_campaign_dir(merge_dir);
    std::printf("merged %lld cells from %lld shards (config %016llx)\n\n",
                static_cast<long long>(merged.total_cells),
                static_cast<long long>(merged.shard_count),
                static_cast<unsigned long long>(merged.config_hash));
    std::printf("%s\n", merged.result.table().render().c_str());
    if (!csv_path.empty()) {
      std::ofstream out(csv_path);
      out << merged.result.to_csv();
      if (out.good()) {
        std::printf("[csv written to %s]\n", csv_path.c_str());
      } else {
        std::fprintf(stderr, "error: could not write %s\n", csv_path.c_str());
        return 2;
      }
    }
    return 0;
  }

  // Replay mode: no simulation at all — open a trace, re-drive the selected
  // metrics over its RoundView stream, and print the same summary scalars
  // the live run would have. The header carries everything the recorder
  // needs (gamma, bands, warmup), so only the metric selection is an input.
  if (!replay_path.empty()) {
    TraceReader reader(replay_path);
    const TraceInfo& info = reader.info();
    const SimResult res = replay_trace(reader, split_csv(metrics_flag));
    std::printf("replayed %s: %lld rounds, n=%lld, k=%d, seed=%016llx, "
                "config %016llx, gamma=%.4f, warmup=%lld\n\n",
                replay_path.c_str(), static_cast<long long>(info.rounds),
                static_cast<long long>(info.n_ants), info.num_tasks,
                static_cast<unsigned long long>(info.seed),
                static_cast<unsigned long long>(info.config_hash), info.gamma,
                static_cast<long long>(info.warmup));
    Table summary({"metric", "value"});
    summary.add_row({"average regret (post-warmup)",
                     Table::fmt(res.post_warmup_average(), 5)});
    summary.add_row({"rounds violating the band",
                     Table::fmt(res.violation_rounds)});
    summary.add_row({"total switches", Table::fmt(res.switches)});
    for (std::size_t i = 0; i < res.metric_names.size(); ++i) {
      summary.add_row({"metric " + res.metric_names[i],
                       Table::fmt(res.metric_values[i], 6)});
    }
    std::printf("%s\n", summary.render().c_str());
    return 0;
  }

  // Sharding flags only mean something for a campaign: a worker that ran
  // with --shard but without --campaign must fail here, not produce nothing
  // and be discovered at merge time.
  if (!campaign_mode && (!shard_flag.empty() || !out_dir.empty())) {
    throw std::invalid_argument(
        "--shard/--out require --campaign=true (sharding partitions the "
        "campaign matrix; see docs/CAMPAIGNS.md)");
  }
  // Same discipline for the trace flags: each belongs to exactly one mode.
  if (!campaign_mode && !trace_dir.empty()) {
    throw std::invalid_argument(
        "--trace-dir requires --campaign=true (one trace per replicate; "
        "use --trace-out for a single run)");
  }
  if (campaign_mode && !trace_out.empty()) {
    throw std::invalid_argument(
        "--trace-out is for single runs; use --trace-dir for campaigns");
  }

  // Parse the string flags into enums once, at the boundary.
  const Engine engine = parse_engine(engine_name);
  const SamplingMode sampling = parse_sampling_mode(sampling_name);
  const InitialKind initial = parse_initial_kind(initial_name);

  // The noise axis: the same factory (and display name) the daemon builds
  // from a wire JobNoise — net/server.h's noise_spec_from is the one source.
  const NoiseSpec noise_spec = noise_spec_from(noise_flags.noise);

  if (campaign_mode) {
    // The campaign config goes through the SAME declarative JobSpec a
    // daemon submission uses (examples/job_flags.h + campaign_from_job), so
    // batch runs and daemon jobs of the same flags share their
    // campaign_config_hash and produce byte-identical rows.
    CampaignConfig campaign = campaign_from_job(parse_job_spec(args));
    campaign.trace_dir = trace_dir;
    if (!shard_flag.empty()) campaign.shard = parse_shard(shard_flag);
    StderrCampaignProgress progress;
    if (show_progress) campaign.progress = &progress;

    std::printf("campaign: %lld scenarios x %lld algos on %s, n=%lld, k=%d, "
                "%lld rounds x %lld replicates\n",
                static_cast<long long>(campaign.scenarios.size()),
                static_cast<long long>(campaign.algos.size()),
                noise_spec.name.c_str(), static_cast<long long>(n), k,
                static_cast<long long>(rounds),
                static_cast<long long>(replicates));
    if (campaign.shard.count > 1) {
      std::printf("shard %lld/%lld: %lld of %lld cells (config %016llx)\n",
                  static_cast<long long>(campaign.shard.index),
                  static_cast<long long>(campaign.shard.count),
                  static_cast<long long>(
                      shard_cell_indices(campaign_total_cells(campaign),
                                         campaign.shard)
                          .size()),
                  static_cast<long long>(campaign_total_cells(campaign)),
                  static_cast<unsigned long long>(
                      campaign_config_hash(campaign)));
    }
    std::printf("\n");
    const CampaignResult result = run_campaign(campaign);
    std::printf("%s\n", result.table().render().c_str());
    if (!out_dir.empty()) {
      const std::string manifest =
          write_campaign_shard(out_dir, campaign, result);
      std::printf("[shard written: %s]\n", manifest.c_str());
    }
    if (!csv_path.empty()) {
      std::ofstream out(csv_path);
      out << result.to_csv();
      if (out.good()) {
        std::printf("[csv written to %s]\n", csv_path.c_str());
      } else {
        std::fprintf(stderr, "error: could not write %s\n", csv_path.c_str());
        return 2;
      }
    }
    return 0;
  }

  ExperimentConfig cfg;
  cfg.algo = AlgoConfig{.name = algo_name, .gamma = gamma, .epsilon = epsilon};
  cfg.engine = engine;
  cfg.n_ants = n;
  cfg.rounds = rounds;
  cfg.seed = seed;
  cfg.initial = initial;
  cfg.sampling = sampling;
  cfg.metrics = {.gamma = gamma,
                 .warmup = rounds / 2,
                 .trace_stride = std::max<Round>(1, rounds / 512),
                 .names = split_csv(metrics_flag)};

  auto fm = noise_spec.make();
  const Engine resolved = resolve_engine(engine, cfg.algo, *fm);
  const DemandSchedule schedule(demands);

  // --trace-out: tap the run's RoundView stream into a binary trace. The
  // header gets the resolved recorder options so --replay reconstructs the
  // same recorder; config_hash 0 marks an ad-hoc (non-campaign) trace.
  std::unique_ptr<TraceWriter> trace_writer;
  if (!trace_out.empty()) {
    const MetricsRecorder::Options resolved_opts = resolved_metrics(cfg);
    trace_writer = std::make_unique<TraceWriter>(
        trace_out, schedule,
        TraceMeta{.n_ants = n,
                  .seed = seed,
                  .gamma = resolved_opts.gamma,
                  .bands = resolved_opts.bands,
                  .warmup = resolved_opts.warmup});
    cfg.metrics.sink = trace_writer.get();
  }

  const SimResult res = run_experiment(cfg, *fm, schedule);
  if (trace_writer) {
    trace_writer->close();  // surfaces deferred writer-thread I/O errors
    std::printf("[trace written to %s (%lld rounds)]\n", trace_out.c_str(),
                static_cast<long long>(trace_writer->rounds_written()));
  }

  std::printf("%s on %s (%s engine): n=%lld, k=%d, d=%lld, gamma=%.4f, "
              "%lld rounds\n\n",
              algo_name.c_str(), std::string(fm->name()).c_str(),
              std::string(to_string(resolved)).c_str(),
              static_cast<long long>(n), k,
              static_cast<long long>(demand), gamma,
              static_cast<long long>(rounds));

  Table summary({"metric", "value"});
  summary.add_row({"average regret (post-warmup)",
                   Table::fmt(res.post_warmup_average(), 5)});
  summary.add_row({"theorem 3.1 band budget",
                   Table::fmt(5.0 * gamma * static_cast<double>(demands.total())
                                  + 3.0 * k, 5)});
  summary.add_row({"rounds violating the band",
                   Table::fmt(res.violation_rounds)});
  const auto conv = measure_convergence(res.trace, demands, gamma);
  summary.add_row({"first round in band",
                   conv.converged() ? Table::fmt(conv.first_in_band)
                                    : std::string("never")});
  summary.add_row({"switches/ant/round",
                   Table::fmt(static_cast<double>(res.switches) /
                                  static_cast<double>(res.rounds) /
                                  static_cast<double>(n), 4)});
  for (TaskId j = 0; j < k; ++j) {
    summary.add_row({"final load task " + std::to_string(j),
                     Table::fmt(res.final_loads[static_cast<std::size_t>(j)]) +
                         " / " + Table::fmt(demands[j])});
  }
  // The selected streaming metrics' named scalars (default set unless
  // --metrics= overrode it).
  for (std::size_t i = 0; i < res.metric_names.size(); ++i) {
    summary.add_row({"metric " + res.metric_names[i],
                     Table::fmt(res.metric_values[i], 6)});
  }
  std::printf("%s\n", summary.render().c_str());

  if (plot && res.trace.size() > 1) {
    std::printf("%s\n",
                plot_trace_deficit(res.trace, 0, gamma, demands[0]).c_str());
  }
  return 0;
}
