// Transport-fault injection for the fleet (satellite of src/orch/): a
// FaultyTransport proxy sits between a worker and the coordinator and
// drops, duplicates, or corrupts individual FRAMES. The contract under
// test: every transport failure mode ends in either a clean retry (the
// coordinator releases the dead worker's leases and a rescuer recomputes
// them) or a named ProtocolError — and the merged CSV stays byte-identical
// to the unsharded run. Damage can cost time, never correctness.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "net/server.h"
#include "orch/coordinator.h"
#include "orch/worker.h"
#include "sim/campaign.h"

namespace antalloc {
namespace {

JobSpec fault_job() {
  JobSpec job;
  job.scenarios = {"task-churn", "constant", "single-shock"};
  job.algos = {JobAlgo{.name = "ant", .gamma = 0.05},
               JobAlgo{.name = "trivial", .gamma = 0.05}};
  job.noise = JobNoise{.kind = NoiseKind::kSigmoid, .lambda = 1.0};
  job.demands = {Count{120}, Count{80}, Count{60}};
  job.n_ants = 600;
  job.rounds = 300;
  job.seed = 42;
  job.replicates = 2;
  job.initial = InitialKind::kUniform;
  return job;
}

void send_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; the pump's next recv sees it too
    sent += static_cast<std::size_t>(n);
  }
}

// A frame-granular loopback proxy: relays the hello verbatim, then parses
// each direction into whole frames and lets a policy decide the fate of
// every frame. Both directions count their own frames from 0.
class FaultyTransport {
 public:
  enum class Action { kForward, kDrop, kDuplicate, kCorrupt };
  // (to_coordinator, frame index in that direction) -> fate.
  using Policy = std::function<Action(bool, std::size_t)>;

  FaultyTransport(std::uint16_t upstream_port, Policy policy)
      : upstream_port_(upstream_port), policy_(std::move(policy)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_OK(listen_fd_ >= 0);
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_OK(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0);
    ASSERT_OK(::listen(listen_fd_, 4) == 0);
    socklen_t len = sizeof(addr);
    ASSERT_OK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len) == 0);
    port_ = ntohs(addr.sin_port);
    accept_thread_ = std::thread([this] { accept_loop(); });
  }

  ~FaultyTransport() {
    running_.store(false);
    accept_thread_.join();
    ::close(listen_fd_);
    std::lock_guard<std::mutex> lock(pumps_mutex_);
    for (std::thread& t : pumps_) t.join();
  }

  std::uint16_t port() const { return port_; }

 private:
  static void ASSERT_OK(bool ok) {
    if (!ok) GTEST_FAIL() << "proxy setup: " << std::strerror(errno);
  }

  void accept_loop() {
    while (running_.load()) {
      pollfd p{listen_fd_, POLLIN, 0};
      if (::poll(&p, 1, 50) <= 0) continue;
      const int client = ::accept(listen_fd_, nullptr, nullptr);
      if (client < 0) continue;
      const int upstream = ::socket(AF_INET, SOCK_STREAM, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(upstream_port_);
      if (::connect(upstream, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) != 0) {
        ::close(upstream);
        ::close(client);
        continue;
      }
      std::lock_guard<std::mutex> lock(pumps_mutex_);
      pumps_.emplace_back([this, client, upstream] {
        std::thread back([this, client, upstream] {
          pump(upstream, client, /*to_coordinator=*/false);
        });
        pump(client, upstream, /*to_coordinator=*/true);
        back.join();
        ::close(client);
        ::close(upstream);
      });
    }
  }

  // One direction: hello verbatim, then frame-at-a-time with the policy.
  void pump(int src, int dst, bool to_coordinator) {
    std::vector<std::uint8_t> buf;
    std::size_t head = 0;
    std::size_t hello_sent = 0;
    std::size_t frame_index = 0;
    std::uint8_t chunk[4096];
    while (true) {
      const ssize_t n = ::recv(src, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buf.insert(buf.end(), chunk, chunk + n);
      if (hello_sent < kHelloBytes) {
        const std::size_t take =
            std::min(kHelloBytes - hello_sent, buf.size() - head);
        send_all(dst, std::span(buf).subspan(head, take));
        hello_sent += take;
        head += take;
      }
      while (hello_sent == kHelloBytes) {
        std::size_t consumed = 0;
        std::optional<Frame> frame;
        try {
          frame = try_decode_frame(std::span(buf).subspan(head), &consumed);
        } catch (const ProtocolError&) {
          break;  // both real peers emit clean frames; damage is ours alone
        }
        if (!frame.has_value()) break;
        std::vector<std::uint8_t> bytes(buf.begin() + head,
                                        buf.begin() + head + consumed);
        head += consumed;
        switch (policy_(to_coordinator, frame_index++)) {
          case Action::kForward:
            send_all(dst, bytes);
            break;
          case Action::kDrop:
            break;
          case Action::kDuplicate:
            send_all(dst, bytes);
            send_all(dst, bytes);
            break;
          case Action::kCorrupt:
            bytes[bytes.size() - 1] ^= 0x01;  // break the trailing checksum
            send_all(dst, bytes);
            break;
        }
      }
      if (head > 0) {
        buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      }
    }
    ::shutdown(dst, SHUT_WR);
    ::shutdown(src, SHUT_RD);
  }

  std::uint16_t upstream_port_;
  Policy policy_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{true};
  std::thread accept_thread_;
  std::mutex pumps_mutex_;
  std::vector<std::thread> pumps_;
};

// Runs one worker through a faulty proxy (expecting it to fail with a
// ProtocolError), then a clean rescuer straight at the coordinator, and
// requires the merged CSV byte-identical to the unsharded run.
void expect_fault_is_survivable(FaultyTransport::Policy policy,
                                bool faulted_worker_must_throw = true) {
  const JobSpec job = fault_job();
  const CampaignResult offline = run_campaign(campaign_from_job(job));

  CoordinatorOptions opts;
  opts.port = 0;
  opts.job = job;
  opts.lease.cells_per_lease = 2;
  CoordinatorServer server(opts);
  server.start();
  FaultyTransport proxy(server.port(), std::move(policy));

  std::string faulted_error;
  std::optional<WorkerReport> faulted_report;
  std::thread faulted([&] {
    try {
      faulted_report =
          run_worker("127.0.0.1", proxy.port(), WorkerOptions{.name = "faulted"});
    } catch (const ProtocolError& e) {
      faulted_error = e.what();
    }
  });
  faulted.join();
  if (faulted_worker_must_throw) {
    EXPECT_NE(faulted_error, "")
        << "the faulted worker was expected to fail with a ProtocolError";
  }

  std::string rescuer_error;
  std::thread rescuer([&] {
    try {
      run_worker("127.0.0.1", server.port(), WorkerOptions{.name = "rescuer"});
    } catch (const ProtocolError& e) {
      rescuer_error = e.what();
    }
  });
  ASSERT_TRUE(server.wait_done()) << server.error();
  rescuer.join();
  EXPECT_EQ(rescuer_error, "");

  // The one invariant damage can never touch: the merged bytes.
  EXPECT_EQ(server.result().to_csv(), offline.to_csv());
  server.stop();
}

TEST(OrchFault, CorruptedResultFrameFailsCleanAndRetries) {
  // Frame 1 to the coordinator is the worker's first CellResult; corrupting
  // its checksum must be detected (never folded), the connection closed,
  // and the cells recomputed by the rescuer.
  expect_fault_is_survivable([](bool to_coordinator, std::size_t index) {
    return to_coordinator && index == 1 ? FaultyTransport::Action::kCorrupt
                                        : FaultyTransport::Action::kForward;
  });
}

TEST(OrchFault, DroppedResultFrameIsASequenceGap) {
  // Dropping a frame leaves a hole in the inbound sequence; the coordinator
  // must refuse the remainder of the stream rather than fold around it.
  expect_fault_is_survivable([](bool to_coordinator, std::size_t index) {
    return to_coordinator && index == 1 ? FaultyTransport::Action::kDrop
                                        : FaultyTransport::Action::kForward;
  });
}

TEST(OrchFault, DuplicatedResultFrameIsASequenceGap) {
  // A transport-level replay: the second copy arrives with a stale seq.
  // The coordinator folds the first copy, then drops the connection — the
  // replay can never double-count a cell.
  expect_fault_is_survivable([](bool to_coordinator, std::size_t index) {
    return to_coordinator && index == 1 ? FaultyTransport::Action::kDuplicate
                                        : FaultyTransport::Action::kForward;
  });
}

TEST(OrchFault, CorruptedGrantFrameFailsTheWorkerByName) {
  // Damage on the coordinator->worker leg: the worker's reader names the
  // damage class and the worker exits instead of computing garbage.
  expect_fault_is_survivable([](bool to_coordinator, std::size_t index) {
    return !to_coordinator && index == 0 ? FaultyTransport::Action::kCorrupt
                                         : FaultyTransport::Action::kForward;
  });
}

TEST(OrchFault, CleanProxyChangesNothing) {
  // Control: the proxy itself is transparent — a worker through a
  // fault-free FaultyTransport completes the campaign normally.
  expect_fault_is_survivable(
      [](bool, std::size_t) { return FaultyTransport::Action::kForward; },
      /*faulted_worker_must_throw=*/false);
}

}  // namespace
}  // namespace antalloc
