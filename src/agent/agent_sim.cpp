#include "agent/agent_sim.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "algo/batched.h"
#include "rng/splitmix.h"

namespace antalloc {
namespace {

// Lays ants out to match the requested initial loads: the first loads[0]
// ants on task 0, the next loads[1] on task 1, ..., the rest idle.
std::vector<TaskId> initial_assignment(Count n_ants,
                                       std::span<const Count> loads) {
  std::vector<TaskId> assignment(static_cast<std::size_t>(n_ants), kIdle);
  std::size_t next = 0;
  for (std::size_t j = 0; j < loads.size(); ++j) {
    for (Count c = 0; c < loads[j]; ++c) {
      assignment[next++] = static_cast<TaskId>(j);
    }
  }
  return assignment;
}

// Batched fast path: the runner advances the whole colony with bulk count
// draws; the engine only supplies per-task marginals and records rounds.
SimResult run_batched(BatchedAgentRunner& runner, const FeedbackModel& fm,
                      const DemandSchedule& schedule, const AgentSimConfig& cfg,
                      std::int32_t k, std::vector<Count> loads,
                      std::span<const TaskId> initial) {
  runner.reset(cfg.n_ants, k, initial, cfg.seed);

  MetricsRecorder recorder(k, cfg.n_ants, cfg.metrics);
  std::vector<double> p_lack(static_cast<std::size_t>(k), 0.0);

  const bool lifecycle = schedule.has_lifecycle();
  ActiveSet current_active = ActiveSet::all(k);
  std::uint64_t active_mask = current_active.mask64();
  std::size_t prev_segment = static_cast<std::size_t>(-1);

  for (Round t = 1; t <= cfg.rounds; ++t) {
    const std::size_t segment = schedule.segment_index_at(t);
    const DemandVector& demands = schedule.segment_demands(segment);
    std::int64_t flushed = 0;
    if (lifecycle && segment != prev_segment) {
      const ActiveSet& active = schedule.segment_active(segment);
      if (active != current_active) {
        flushed = runner.apply_lifecycle(t, active, loads);
        current_active = active;
        active_mask = current_active.mask64();
      }
    }
    prev_segment = segment;
    // Per-ant marginal lack probability of each task this round. Feedback
    // reflects the loads at time t-1; dormant tasks answer unconditional
    // overload, i.e. marginal 0.
    for (std::int32_t j = 0; j < k; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      p_lack[ju] =
          ((active_mask >> j) & 1)
              ? fm.lack_probability(t, j,
                                    static_cast<double>(demands[j] - loads[ju]),
                                    static_cast<double>(demands[j]))
              : 0.0;
    }

    const std::int64_t switches = runner.step(t, p_lack, active_mask, loads);

    recorder.record_round(RoundView{.t = t,
                                    .loads = loads,
                                    .demands = &demands,
                                    .active = &current_active,
                                    .switches = flushed + switches,
                                    .flushes = flushed});
  }
  return recorder.finish(loads);
}

}  // namespace

std::string_view to_string(SamplingMode mode) {
  return mode == SamplingMode::kBatched ? "batched" : "per-ant";
}

SamplingMode parse_sampling_mode(std::string_view s) {
  if (s == "per-ant") return SamplingMode::kPerAnt;
  if (s == "batched") return SamplingMode::kBatched;
  throw std::invalid_argument("unknown sampling mode '" + std::string(s) +
                              "' (expected per-ant|batched)");
}

SimResult run_agent_sim(AgentAlgorithm& algo, FeedbackModel& fm,
                        const DemandSchedule& schedule,
                        const AgentSimConfig& cfg) {
  const std::int32_t k = schedule.num_tasks();
  if (k > kMaxAgentTasks) {
    throw std::invalid_argument("run_agent_sim: k exceeds kMaxAgentTasks");
  }
  std::vector<Count> loads(static_cast<std::size_t>(k), 0);
  if (!cfg.initial_loads.empty()) {
    if (cfg.initial_loads.size() != static_cast<std::size_t>(k)) {
      throw std::invalid_argument("run_agent_sim: initial_loads size");
    }
    loads = cfg.initial_loads;
  }
  // Validates that the loads fit within the colony.
  Allocation init(cfg.n_ants, loads);

  std::vector<TaskId> assignment = initial_assignment(cfg.n_ants, loads);

  // Batched sampling applies only when the algorithm offers a runner and the
  // per-ant draws are exchangeable (i.i.d. given the loads); anything else
  // falls back to the per-ant stream, which is always correct.
  if (cfg.sampling == SamplingMode::kBatched && fm.iid_across_ants()) {
    if (BatchedAgentRunner* runner = algo.batched_runner()) {
      return run_batched(*runner, fm, schedule, cfg, k, std::move(loads),
                         assignment);
    }
  }

  std::vector<TaskId> next_assignment(assignment.size(), kIdle);
  algo.reset(cfg.n_ants, k, assignment, cfg.seed);

  MetricsRecorder recorder(k, cfg.n_ants, cfg.metrics);
  std::vector<double> deficits(static_cast<std::size_t>(k), 0.0);
  rng::Xoshiro256 model_gen(rng::hash_combine(cfg.seed, 0xBEEFull));

  // Task lifecycle: the engine starts from the all-active assumption the
  // initial allocation was built under, and applies retire transitions at
  // every segment boundary where the active set changes (including round 1,
  // which flushes initial loads placed on tasks that are dormant from the
  // start). The flush is deterministic: workers of a dying task go straight
  // to kIdle.
  const bool lifecycle = schedule.has_lifecycle();
  ActiveSet current_active = ActiveSet::all(k);
  std::uint64_t active_mask = current_active.mask64();
  std::size_t prev_segment = static_cast<std::size_t>(-1);

  for (Round t = 1; t <= cfg.rounds; ++t) {
    // One segment lookup per round serves both the demands and (on segment
    // changes only) the active set.
    const std::size_t segment = schedule.segment_index_at(t);
    const DemandVector& demands = schedule.segment_demands(segment);
    std::int64_t flushed = 0;
    if (lifecycle && segment != prev_segment) {
      const ActiveSet& active = schedule.segment_active(segment);
      if (active != current_active) {
        // The retirement flush is its own switch event, part of round t's
        // count; the post-step diff below runs against the post-flush
        // snapshot. An ant that is flushed and immediately re-recruited
        // therefore counts twice (task -> idle -> task), the same
        // convention the aggregate kernels' apply_lifecycle + join
        // accounting produces.
        for (auto& a : assignment) {
          if (a != kIdle && !active[a]) {
            --loads[static_cast<std::size_t>(a)];
            a = kIdle;
            ++flushed;
          }
        }
        algo.on_lifecycle(t, active);
        current_active = active;
        active_mask = current_active.mask64();
      }
    }
    prev_segment = segment;
    // Feedback in round t reflects the loads at time t-1; dormant tasks are
    // outside the problem, so their deficit is pinned to zero (their
    // feedback is unconditionally overload regardless).
    for (std::int32_t j = 0; j < k; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      deficits[ju] = ((active_mask >> j) & 1)
                         ? static_cast<double>(demands[j] - loads[ju])
                         : 0.0;
    }
    fm.begin_round(t, deficits, demands.values(), model_gen);
    const FeedbackAccess fb(fm, t, deficits, demands.values(), cfg.seed,
                            active_mask);

    algo.step(t, fb, assignment, next_assignment);

    // Fused incremental diff: update loads and count exact switches against
    // the post-flush snapshot, then swap the double-buffered assignments —
    // no per-round O(n) copy or O(k) refill.
    std::int64_t switches = 0;
    for (std::size_t i = 0; i < assignment.size(); ++i) {
      const TaskId was = assignment[i];
      const TaskId now = next_assignment[i];
      if (now == was) continue;
      ++switches;
      if (was != kIdle) --loads[static_cast<std::size_t>(was)];
      if (now != kIdle) ++loads[static_cast<std::size_t>(now)];
    }
    assignment.swap(next_assignment);
    recorder.record_round(RoundView{.t = t,
                                    .loads = loads,
                                    .demands = &demands,
                                    .active = &current_active,
                                    .switches = flushed + switches,
                                    .flushes = flushed});
  }
  return recorder.finish(loads);
}

SimResult run_agent_sim(AgentAlgorithm& algo, FeedbackModel& fm,
                        const DemandVector& demands,
                        const AgentSimConfig& cfg) {
  return run_agent_sim(algo, fm, DemandSchedule(demands), cfg);
}

}  // namespace antalloc
