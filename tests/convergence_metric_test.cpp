#include <gtest/gtest.h>

#include "metrics/convergence.h"

namespace antalloc {
namespace {

Trace make_trace(const std::vector<Count>& deficits) {
  Trace trace(1, 1);
  Round t = 0;
  for (const Count d : deficits) {
    trace.record(++t, std::vector<Count>{d}, std::abs(d));
  }
  return trace;
}

TEST(Convergence, DetectsEntryIntoBand) {
  // Band for d=100, gamma=0.1: |deficit| <= 53.
  const DemandVector demands({Count{100}});
  const auto trace = make_trace({90, 70, 60, 50, 40, 30, 20, 10});
  const auto stats = measure_convergence(trace, demands, 0.1);
  EXPECT_TRUE(stats.converged());
  EXPECT_EQ(stats.first_in_band, 4);  // first |d| <= 53 is 50 at t=4
  EXPECT_EQ(stats.last_violation, 3);
  EXPECT_DOUBLE_EQ(stats.occupancy_after_entry, 1.0);
}

TEST(Convergence, NeverConverged) {
  const DemandVector demands({Count{100}});
  const auto trace = make_trace({90, 80, 90, 100});
  const auto stats = measure_convergence(trace, demands, 0.1);
  EXPECT_FALSE(stats.converged());
  EXPECT_EQ(stats.first_in_band, -1);
  EXPECT_EQ(stats.last_violation, 4);
}

TEST(Convergence, RelapseLowersOccupancy) {
  const DemandVector demands({Count{100}});
  // Enters at t=1, relapses at t=3.
  const auto trace = make_trace({10, 20, 90, 10});
  const auto stats = measure_convergence(trace, demands, 0.1);
  EXPECT_TRUE(stats.converged());
  EXPECT_EQ(stats.first_in_band, 1);
  EXPECT_EQ(stats.last_violation, 3);
  EXPECT_DOUBLE_EQ(stats.occupancy_after_entry, 0.75);
}

TEST(Convergence, RespectsDemandSchedule) {
  // Deficit 60 is out of band for d=100 (band 53) but inside for d=200
  // (band 103). Schedule switches at t=3.
  DemandSchedule schedule(DemandVector({Count{100}}));
  schedule.add_change(3, DemandVector({Count{200}}));
  const auto trace = make_trace({60, 60, 60, 60});
  const auto stats = measure_convergence(trace, schedule, 0.1);
  EXPECT_TRUE(stats.converged());
  EXPECT_EQ(stats.first_in_band, 3);
  EXPECT_EQ(stats.last_violation, 2);
}

TEST(Convergence, EmptyTrace) {
  Trace trace(1, 1);
  const auto stats = measure_convergence(trace, DemandVector({Count{10}}),
                                         0.1);
  EXPECT_FALSE(stats.converged());
  EXPECT_EQ(stats.last_violation, 0);
}

}  // namespace
}  // namespace antalloc
