// Experiment façade: one call from an algorithm name + noise model factory +
// demand schedule to replicated, parallel simulation results. This is the
// API every bench and example builds on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "core/demand.h"
#include "metrics/regret.h"

namespace antalloc {

// Builds a fresh noise-model instance per trial (models may be stateful).
using ModelFactory = std::function<std::unique_ptr<FeedbackModel>()>;

struct ExperimentConfig {
  AlgoConfig algo{};
  // "aggregate" (exact count kernel; i.i.d. noise only) or "agent"
  // (per-ant simulation; any noise).
  std::string engine = "aggregate";
  Count n_ants = 1 << 14;
  Round rounds = 10'000;
  std::uint64_t seed = 1;
  // Initial allocation kind: "idle", "uniform", "adversarial", "random"
  // (see make_initial_allocation).
  std::string initial = "idle";
  MetricsRecorder::Options metrics{};
};

// Runs a single trial.
SimResult run_experiment(const ExperimentConfig& cfg, FeedbackModel& fm,
                         const DemandSchedule& schedule);

// Runs `replicates` independent trials in parallel (deterministic per-trial
// seeds derived from cfg.seed).
std::vector<SimResult> run_replicated_experiment(const ExperimentConfig& cfg,
                                                 const ModelFactory& make_model,
                                                 const DemandSchedule& schedule,
                                                 std::int64_t replicates);

// Common scalar extractions over replicate sets.
std::vector<double> extract_post_warmup_average(
    const std::vector<SimResult>& results);
std::vector<double> extract_closeness(const std::vector<SimResult>& results,
                                      double gamma_star, Count total_demand);

}  // namespace antalloc
