// A1/A2 — Ablations of Algorithm Ant's design constants.
//
// (a) Sample spacing cs, under two noise regimes:
//     * sharp feedback (adversarial model, honest in the grey zone): with
//       cs = 0 both samples read the SAME load, so whenever the load drifts
//       below the demand every idle ant sees lack twice and the whole pool
//       floods in — a periodic Θ(n) catastrophe. The paper's cs = 2.4 spaces
//       the dip past the grey zone, the stable zone absorbs, and the flood
//       happens at most once (Claims 4.2/4.3).
//     * smooth sigmoid noise: the sigmoid's gradual probabilities let even
//       cs = 0 equilibrate at a small offset, while the dip itself costs
//       ~cs·γ·d regret every other round — so regret grows with cs. The
//       paper pays that price deliberately: it buys worst-case robustness.
//     Together the two columns show why cs is chosen just above the
//     stable-zone threshold 20/9 + 2/(cd-1) ≈ 2.33 and no larger.
//
// (b) Leave damping cd (sigmoid noise): small cd drains overloads fast but
//     the paper's analysis needs cs >= 20/9 + 2/(cd-1) — tiny cd voids the
//     stable zone; huge cd drains the one-time flood too slowly.
#include "algo/ant.h"
#include "noise/adversarial.h"
#include "common.h"

using namespace antalloc;

namespace {

double steady_regret(double cs, double cd, double gamma, Count demand,
                     const ModelFactory& make_model, Round rounds,
                     std::int64_t replicates) {
  const DemandVector demands({demand});
  const Count n = 4 * demand;
  const auto values = run_trials(
      replicates, 71, [&](std::int64_t, std::uint64_t seed) {
        AntAggregate kernel(AntParams{.gamma = gamma, .cs = cs, .cd = cd});
        auto fm = make_model();
        AggregateSimConfig sim{.n_ants = n,
                               .rounds = rounds,
                               .seed = seed,
                               .metrics = {.gamma = gamma,
                                           .warmup = rounds / 2}};
        return run_aggregate_sim(kernel, *fm, demands, sim)
            .post_warmup_average();
      });
  return summarize(values).mean();
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const Count demand = args.get_int("demand", 20'000);
  const double lambda = args.get_double("lambda", 0.035);
  const double gamma_ad = args.get_double("gamma_ad", 0.02);
  const double gamma = args.get_double("gamma", 0.05);
  const auto rounds = args.get_int("rounds", 16'000);
  const auto replicates = args.get_int("replicates", 4);
  args.check_unknown();

  bench::print_header(
      "A1+A2 / ablations: sample spacing cs and leave damping cd",
      "sharp noise: cs=0 refloods catastrophically; smooth noise: the dip "
      "costs ~cs*g*d — cs=2.4 is the smallest stable choice");

  const auto sigmoid_model = [&]() -> std::unique_ptr<FeedbackModel> {
    return std::make_unique<SigmoidFeedback>(lambda);
  };
  const auto sharp_model = [&]() -> std::unique_ptr<FeedbackModel> {
    return std::make_unique<AdversarialFeedback>(gamma_ad,
                                                 make_honest_adversary());
  };

  bench::BenchContext ctx(
      "bench_ablation_constants",
      {"parameter", "value", "regret_sharp", "regret_sigmoid",
       "sharp/(g*d)", "sigmoid/(g*d)"});

  const double scale = gamma * static_cast<double>(demand);
  double sharp_cs0 = 0.0;
  double sharp_paper = 0.0;
  for (const double cs : {0.0, 0.6, 1.2, 2.4, 4.8, 9.6}) {
    const double sharp =
        steady_regret(cs, 19.0, gamma, demand, sharp_model, rounds,
                      replicates);
    const double smooth =
        steady_regret(cs, 19.0, gamma, demand, sigmoid_model, rounds,
                      replicates);
    ctx.table.add_row({"cs", Table::fmt(cs, 3), Table::fmt(sharp, 5),
                       Table::fmt(smooth, 5), Table::fmt(sharp / scale, 3),
                       Table::fmt(smooth / scale, 3)});
    if (cs == 0.0) sharp_cs0 = sharp;
    if (cs == 2.4) sharp_paper = sharp;
  }
  // The two-sample spacing must beat no-spacing decisively under sharp
  // noise (the regime the algorithm is designed for).
  if (sharp_paper >= 0.25 * sharp_cs0) ctx.exit_code = 1;

  for (const double cd : {2.0, 6.0, 19.0, 60.0, 200.0}) {
    const double sharp =
        steady_regret(2.4, cd, gamma, demand, sharp_model, rounds, replicates);
    const double smooth = steady_regret(2.4, cd, gamma, demand, sigmoid_model,
                                        rounds, replicates);
    ctx.table.add_row({"cd", Table::fmt(cd, 3), Table::fmt(sharp, 5),
                       Table::fmt(smooth, 5), Table::fmt(sharp / scale, 3),
                       Table::fmt(smooth / scale, 3)});
  }
  return ctx.finish();
}
