// Campaign sharding: the partition function's disjoint-union contract, the
// load-bearing bit-identity of merged shards vs the unsharded run (in memory
// and through the CSV/manifest disk round trip), and the merge's refusal of
// mismatched, incomplete or corrupted shard sets.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>

#include "io/campaign_io.h"
#include "sim/campaign.h"
#include "testing_util.h"

namespace antalloc {
namespace {

namespace fs = std::filesystem;

using test_util::make_temp_dir;
using test_util::shard_matrix;

CampaignResult run_all_shards_merged(CampaignConfig cfg, std::size_t count) {
  std::vector<CampaignResult> shards;
  for (std::size_t i = 0; i < count; ++i) {
    cfg.shard = {i, count};
    shards.push_back(run_campaign(cfg));
  }
  return merge_campaign_shards(std::move(shards), campaign_total_cells(cfg));
}

void expect_stats_identical(const RunningStats& a, const RunningStats& b) {
  const auto sa = a.state();
  const auto sb = b.state();
  EXPECT_EQ(sa.count, sb.count);
  EXPECT_EQ(sa.mean, sb.mean);
  EXPECT_EQ(sa.m2, sb.m2);
  EXPECT_EQ(sa.min, sb.min);
  EXPECT_EQ(sa.max, sb.max);
}

// Bit-identical over everything the disk format round-trips (the whole
// CampaignResult minus per-replicate traces, which are in-memory only).
void expect_bit_identical(const CampaignResult& a, const CampaignResult& b,
                          bool compare_results) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    const CampaignCell& x = a.cells[i];
    const CampaignCell& y = b.cells[i];
    EXPECT_EQ(x.flat_index, y.flat_index);
    EXPECT_EQ(x.scenario, y.scenario);
    EXPECT_EQ(x.algo, y.algo);
    EXPECT_EQ(x.noise, y.noise);
    EXPECT_EQ(x.engine, y.engine);
    expect_stats_identical(x.regret, y.regret);
    expect_stats_identical(x.violations, y.violations);
    EXPECT_EQ(x.switches_per_ant_round, y.switches_per_ant_round);
    if (compare_results) {
      ASSERT_EQ(x.results.size(), y.results.size());
      for (std::size_t r = 0; r < x.results.size(); ++r) {
        const SimResult& u = x.results[r];
        const SimResult& v = y.results[r];
        EXPECT_EQ(u.rounds, v.rounds);
        EXPECT_EQ(u.n_ants, v.n_ants);
        EXPECT_EQ(u.total_regret, v.total_regret);
        EXPECT_EQ(u.regret_plus, v.regret_plus);
        EXPECT_EQ(u.regret_near, v.regret_near);
        EXPECT_EQ(u.regret_minus, v.regret_minus);
        EXPECT_EQ(u.post_warmup_rounds, v.post_warmup_rounds);
        EXPECT_EQ(u.post_warmup_regret, v.post_warmup_regret);
        EXPECT_EQ(u.violation_rounds, v.violation_rounds);
        EXPECT_EQ(u.switches, v.switches);
        EXPECT_EQ(u.final_loads, v.final_loads);
      }
    }
  }
  // And the rendered artifact is the same bytes.
  EXPECT_EQ(a.to_csv(), b.to_csv());
}

TEST(ShardPartition, UnionIsDisjointAndComplete) {
  // Ragged splits included: every (total, count) partitions {0..total-1}.
  for (const std::size_t total : {1u, 5u, 6u, 7u, 12u, 13u}) {
    for (const std::size_t count : {1u, 2u, 3u, 5u, 8u}) {
      SCOPED_TRACE(std::to_string(total) + " cells, " +
                   std::to_string(count) + " shards");
      std::set<std::size_t> seen;
      std::size_t claimed = 0;
      for (std::size_t i = 0; i < count; ++i) {
        const ShardSpec shard{i, count};
        for (const std::size_t flat : shard_cell_indices(total, shard)) {
          EXPECT_TRUE(shard_owns(shard, flat));
          EXPECT_TRUE(seen.insert(flat).second) << "duplicate " << flat;
          ++claimed;
        }
      }
      EXPECT_EQ(claimed, total);
      if (total > 0) {
        EXPECT_EQ(*seen.begin(), 0u);
        EXPECT_EQ(*seen.rbegin(), total - 1);
      }
    }
  }
}

TEST(ShardPartition, RejectsInvalidSpec) {
  EXPECT_THROW(shard_owns({0, 0}, 0), std::invalid_argument);
  EXPECT_THROW(shard_owns({3, 3}, 0), std::invalid_argument);
  EXPECT_THROW(shard_cell_indices(10, {5, 2}), std::invalid_argument);
  auto cfg = shard_matrix();
  cfg.shard = {2, 2};
  EXPECT_THROW(run_campaign(cfg), std::invalid_argument);
}

TEST(CampaignShard, ShardRunsOnlyItsCells) {
  auto cfg = shard_matrix();
  const CampaignResult full = run_campaign(cfg);
  ASSERT_EQ(full.cells.size(), 6u);
  for (std::size_t i = 0; i < full.cells.size(); ++i) {
    EXPECT_EQ(full.cells[i].flat_index, i);  // unsharded = identity order
  }

  cfg.shard = {1, 3};
  const CampaignResult shard = run_campaign(cfg);
  ASSERT_EQ(shard.cells.size(), 2u);
  EXPECT_EQ(shard.cells[0].flat_index, 1u);
  EXPECT_EQ(shard.cells[1].flat_index, 4u);
  // The shard's cells are the unsharded cells, bit for bit.
  for (const CampaignCell& cell : shard.cells) {
    const CampaignCell& ref = full.cells[cell.flat_index];
    EXPECT_EQ(cell.scenario, ref.scenario);
    EXPECT_EQ(cell.algo, ref.algo);
    expect_stats_identical(cell.regret, ref.regret);
  }
}

TEST(CampaignShard, MergedShardsBitIdenticalToUnsharded) {
  auto cfg = shard_matrix();
  cfg.keep_results = true;
  const CampaignResult full = run_campaign(cfg);
  // N = 1 (degenerate), 3 (even: 6 % 3 = 0) and 5 (ragged: 6 % 5 = 1, so
  // shard 0 owns two cells and shards 1-4 own one each).
  for (const std::size_t count : {1u, 3u, 5u}) {
    SCOPED_TRACE(std::to_string(count) + " shards");
    const CampaignResult merged = run_all_shards_merged(cfg, count);
    expect_bit_identical(merged, full, /*compare_results=*/true);
  }
}

TEST(CampaignShard, MergeRejectsIncompleteOrDuplicateCells) {
  auto cfg = shard_matrix();
  std::vector<CampaignResult> shards;
  cfg.shard = {0, 3};
  shards.push_back(run_campaign(cfg));
  // Missing shards 1 and 2.
  EXPECT_THROW(merge_campaign_shards(std::move(shards),
                                     campaign_total_cells(cfg)),
               std::invalid_argument);

  shards.clear();
  shards.push_back(run_campaign(cfg));
  shards.push_back(run_campaign(cfg));  // shard 0 twice
  EXPECT_THROW(merge_campaign_shards(std::move(shards),
                                     campaign_total_cells(cfg)),
               std::invalid_argument);
}

TEST(ConfigHash, SensitiveToResultsAffectingFieldsOnly) {
  const auto cfg = shard_matrix();
  const std::uint64_t base = campaign_config_hash(cfg);

  auto seed = cfg;
  seed.seed = 8;
  EXPECT_NE(campaign_config_hash(seed), base);

  auto rounds = cfg;
  rounds.rounds = 201;
  EXPECT_NE(campaign_config_hash(rounds), base);

  auto gamma = cfg;
  gamma.algos[0].gamma = 0.06;
  EXPECT_NE(campaign_config_hash(gamma), base);

  auto scen = cfg;
  scen.scenarios.pop_back();
  EXPECT_NE(campaign_config_hash(scen), base);

  auto noise = cfg;
  noise.noises[0].name = "sigmoid2";
  EXPECT_NE(campaign_config_hash(noise), base);

  auto paired = cfg;
  paired.pair_noise_seeds = true;
  EXPECT_NE(campaign_config_hash(paired), base);

  // The shard spec and thread pool must NOT enter the hash: every shard of
  // one campaign carries the same hash, which is what the merge checks.
  auto sharded = cfg;
  sharded.shard = {2, 5};
  EXPECT_EQ(campaign_config_hash(sharded), base);
}

TEST(CampaignShardIo, DiskRoundTripBitIdentical) {
  const std::string dir = make_temp_dir("roundtrip");
  auto cfg = shard_matrix();
  cfg.keep_results = true;
  const CampaignResult full = run_campaign(cfg);

  for (std::size_t i = 0; i < 3; ++i) {
    cfg.shard = {i, 3};
    write_campaign_shard(dir, cfg, run_campaign(cfg));
  }

  const MergedCampaign merged = merge_campaign_dir(dir);
  EXPECT_EQ(merged.shard_count, 3u);
  EXPECT_EQ(merged.total_cells, 6u);
  cfg.shard = {};
  EXPECT_EQ(merged.config_hash, campaign_config_hash(cfg));
  expect_bit_identical(merged.result, full, /*compare_results=*/true);
  fs::remove_all(dir);
}

TEST(CampaignShardIo, ManifestDescribesTheShard) {
  const std::string dir = make_temp_dir("manifest");
  auto cfg = shard_matrix();
  cfg.shard = {1, 5};  // ragged: owns flat index 1 only
  const std::string path = write_campaign_shard(dir, cfg, run_campaign(cfg));
  const ShardManifest m = read_shard_manifest(path);
  EXPECT_EQ(m.shard_index, 1u);
  EXPECT_EQ(m.shard_count, 5u);
  EXPECT_EQ(m.total_cells, 6u);
  EXPECT_EQ(m.shard_cells, 1u);  // flat index 1 only (1 + 5 = 6 is past the end)
  fs::remove_all(dir);
}

TEST(CampaignShardIo, RejectsShardFromDifferentConfig) {
  const std::string dir = make_temp_dir("mismatch");
  auto cfg = shard_matrix();
  cfg.shard = {0, 2};
  write_campaign_shard(dir, cfg, run_campaign(cfg));

  auto other = shard_matrix();
  other.seed = 1234;  // different campaign
  other.shard = {1, 2};
  write_campaign_shard(dir, other, run_campaign(other));

  EXPECT_THROW(merge_campaign_dir(dir), std::runtime_error);
  fs::remove_all(dir);
}

TEST(CampaignShardIo, RejectsMissingShardAndCorruptedRows) {
  const std::string dir = make_temp_dir("missing");
  auto cfg = shard_matrix();
  cfg.shard = {0, 2};
  const std::string manifest_path =
      write_campaign_shard(dir, cfg, run_campaign(cfg));
  // Shard 1 of 2 was never produced.
  EXPECT_THROW(merge_campaign_dir(dir), std::runtime_error);

  cfg.shard = {1, 2};
  write_campaign_shard(dir, cfg, run_campaign(cfg));
  EXPECT_NO_THROW(merge_campaign_dir(dir));

  // Corrupt one data file: the checksum in the manifest must catch it.
  const ShardManifest m = read_shard_manifest(manifest_path);
  std::ofstream tamper(fs::path(dir) / m.rows_file, std::ios::app);
  tamper << "tampered\n";
  tamper.close();
  EXPECT_THROW(merge_campaign_dir(dir), std::runtime_error);
  fs::remove_all(dir);
}

TEST(CampaignShardIo, WriteRefusesForeignResult) {
  const std::string dir = make_temp_dir("foreign");
  auto cfg = shard_matrix();
  cfg.shard = {0, 3};
  const CampaignResult shard0 = run_campaign(cfg);
  cfg.shard = {1, 3};
  // Result from shard 0 presented as shard 1: flat indices do not match.
  EXPECT_THROW(write_campaign_shard(dir, cfg, shard0),
               std::invalid_argument);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace antalloc
