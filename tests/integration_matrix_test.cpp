// Integration smoke matrix: every algorithm × engine × compatible noise
// model must (a) run to completion, (b) conserve ants every recorded round,
// (c) be bitwise deterministic given the seed, and (d) produce an exactly
// consistent regret decomposition. These invariants are engine-level
// contracts, independent of any theorem.
#include <gtest/gtest.h>

#include <string>

#include "aggregate/aggregate_sim.h"
#include "agent/agent_sim.h"
#include "algo/registry.h"
#include "noise/adversarial.h"
#include "noise/exact.h"
#include "noise/sigmoid.h"

namespace antalloc {
namespace {

struct MatrixCase {
  std::string algo;
  std::string engine;  // "agent" or "aggregate"
  std::string noise;   // "sigmoid", "adv", "exact"
};

std::unique_ptr<FeedbackModel> make_noise(const std::string& kind) {
  if (kind == "sigmoid") return std::make_unique<SigmoidFeedback>(0.7);
  if (kind == "exact") return std::make_unique<ExactFeedback>();
  return std::make_unique<AdversarialFeedback>(0.02, make_honest_adversary());
}

class IntegrationMatrix : public ::testing::TestWithParam<MatrixCase> {};

SimResult run_case(const MatrixCase& param, std::uint64_t seed) {
  const Count n = 1200;
  const DemandVector demands({Count{200}, Count{100}});
  AlgoConfig algo{.name = param.algo, .gamma = 0.05, .epsilon = 0.5};
  auto fm = make_noise(param.noise);
  const Round rounds = 800;
  MetricsRecorder::Options metrics{.gamma = 0.05, .trace_stride = 1};
  if (param.engine == "agent") {
    auto a = make_agent_algorithm(algo);
    AgentSimConfig cfg{.n_ants = n, .rounds = rounds, .seed = seed,
                       .metrics = metrics};
    return run_agent_sim(*a, *fm, demands, cfg);
  }
  auto kernel = make_aggregate_kernel(algo);
  AggregateSimConfig cfg{.n_ants = n, .rounds = rounds, .seed = seed,
                         .metrics = metrics};
  return run_aggregate_sim(*kernel, *fm, demands, cfg);
}

TEST_P(IntegrationMatrix, RunsConservesAndIsDeterministic) {
  const auto param = GetParam();
  const auto res = run_case(param, 77);

  // (a) completed.
  EXPECT_EQ(res.rounds, 800);

  // (b) conservation: loads derived from deficits must fit the colony.
  for (std::size_t i = 0; i < res.trace.size(); ++i) {
    Count assigned = 0;
    assigned += 200 - res.trace.deficit_at(i, 0);
    assigned += 100 - res.trace.deficit_at(i, 1);
    ASSERT_GE(assigned, 0) << "round " << res.trace.round_at(i);
    ASSERT_LE(assigned, 1200) << "round " << res.trace.round_at(i);
  }

  // (c) determinism.
  const auto res2 = run_case(param, 77);
  EXPECT_EQ(res.final_loads, res2.final_loads);
  EXPECT_DOUBLE_EQ(res.total_regret, res2.total_regret);
  EXPECT_EQ(res.switches, res2.switches);

  // (d) decomposition identity.
  EXPECT_NEAR(res.total_regret,
              res.regret_plus + res.regret_near + res.regret_minus,
              1e-9 * (1.0 + res.total_regret));
}

std::vector<MatrixCase> all_cases() {
  std::vector<MatrixCase> cases;
  for (const auto& algo : algorithm_names()) {
    for (const std::string engine : {"agent", "aggregate"}) {
      for (const std::string noise : {"sigmoid", "adv", "exact"}) {
        // The precise-adversarial kernel only supports deterministic models
        // and the threshold baseline has no aggregate kernel at all.
        if (algo == "precise-adversarial" && engine == "aggregate" &&
            noise == "sigmoid") {
          continue;
        }
        if (engine == "aggregate" && !has_aggregate_kernel(algo)) continue;
        cases.push_back({algo, engine, noise});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, IntegrationMatrix, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      std::string name =
          info.param.algo + "_" + info.param.engine + "_" + info.param.noise;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace antalloc
