#include "algo/oracle.h"

#include <algorithm>

namespace antalloc {

void OracleAggregate::reset(const Allocation& initial, std::uint64_t /*seed*/) {
  n_ = initial.n_ants();
  loads_.assign(initial.loads().begin(), initial.loads().end());
}

Count OracleAggregate::apply_lifecycle(Round /*t*/, const ActiveSet& active) {
  Count switched = 0;
  for (std::size_t j = 0; j < loads_.size(); ++j) {
    if (!active[static_cast<TaskId>(j)]) {
      switched += loads_[j];
      loads_[j] = 0;
    }
  }
  return switched;
}

AggregateKernel::RoundOutput OracleAggregate::step(Round /*t*/,
                                                   const DemandVector& demands,
                                                   const FeedbackModel&) {
  // Satisfy demands greedily; if the colony is too small, fill in task
  // order (the regret is then the unavoidable shortfall).
  std::int64_t switches = 0;
  Count budget = n_;
  for (std::int32_t j = 0; j < demands.num_tasks(); ++j) {
    const auto ju = static_cast<std::size_t>(j);
    const Count target = std::min(demands[j], budget);
    switches += std::abs(loads_[ju] - target);
    loads_[ju] = target;
    budget -= target;
  }
  return {loads_, switches};
}

void OracleAgent::reset(Count /*n_ants*/, std::int32_t k,
                        std::span<const TaskId> /*initial*/,
                        std::uint64_t /*seed*/) {
  k_ = k;
}

void OracleAgent::step(Round /*t*/, const FeedbackAccess& fb,
                       std::span<const TaskId> /*prev*/,
                       std::span<TaskId> next) {
  // Deterministically lay ants out to meet the demands exactly: the first
  // d(0) ants on task 0, the next d(1) on task 1, ..., the rest idle.
  std::size_t cursor = 0;
  for (TaskId j = 0; j < k_; ++j) {
    const auto want = static_cast<std::size_t>(std::max<Count>(0, fb.demand(j)));
    for (std::size_t c = 0; c < want && cursor < next.size(); ++c) {
      next[cursor++] = j;
    }
  }
  std::fill(next.begin() + static_cast<std::ptrdiff_t>(cursor), next.end(),
            kIdle);
}

}  // namespace antalloc
