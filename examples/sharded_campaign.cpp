// Sharded campaign, end to end in one process: run one campaign as three
// shards, persist each shard as the CSV/manifest pair a distributed worker
// would upload, merge the directory, and check the merged result is
// byte-identical to an unsharded run of the same config.
//
// This is the compile-checked worked example embedded in docs/CAMPAIGNS.md —
// keep the two in sync. In production the three shard runs happen on three
// machines (a CI matrix, a cluster); nothing in the code changes, only where
// the processes run and how the shard directories are collected.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/sharded_campaign
#include <cstdio>
#include <memory>

#include "io/campaign_io.h"
#include "noise/sigmoid.h"
#include "sim/campaign.h"

using namespace antalloc;

int main() {
  // The campaign: 3 scenario families x 2 algorithms x 1 noise = 6 cells.
  const DemandVector base({Count{900}, Count{600}, Count{300}});
  CampaignConfig cfg;
  for (const char* family : {"constant", "single-shock", "task-churn"}) {
    ScenarioSpec spec;
    spec.name = family;
    spec.initial = InitialKind::kUniform;
    cfg.scenarios.push_back(make_scenario(spec, base, 2000));
  }
  cfg.algos = {AlgoConfig{.name = "ant", .gamma = 0.05},
               AlgoConfig{.name = "trivial", .gamma = 0.05}};
  cfg.noises = {{"sigmoid",
                 [] { return std::make_unique<SigmoidFeedback>(1.0); }}};
  cfg.n_ants = 8192;
  cfg.rounds = 2000;
  cfg.seed = 11;
  cfg.replicates = 4;
  // Metric selection: the default trio plus streaming convergence time.
  // The resolved list enters the config hash, so every shard must select
  // the same metrics - and the merged table grows their columns.
  cfg.metrics.names = {"regret", "violations", "switches", "convergence"};

  // Phase 1 — each "worker" runs its shard and persists it. Cell seeds are
  // derived from matrix coordinates, so a shard computes the same bits
  // wherever and whenever it runs.
  for (std::size_t i = 0; i < 3; ++i) {
    cfg.shard = ShardSpec{i, 3};
    write_campaign_shard("shard-demo", cfg, run_campaign(cfg));
  }

  // Phase 2 — anyone holding the directory merges. The manifests carry the
  // campaign config hash, so mixing shards of different campaigns throws.
  const MergedCampaign merged = merge_campaign_dir("shard-demo");
  std::printf("%s\n", merged.result.table().render().c_str());

  // The determinism contract: bit-identical to the unsharded run.
  cfg.shard = ShardSpec{};
  const CampaignResult unsharded = run_campaign(cfg);
  const bool identical = merged.result.to_csv() == unsharded.to_csv();
  std::printf("merged == unsharded: %s\n", identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
