// Tests for the trivial algorithm (Appendix D): sequential-model stability
// versus synchronous-model full-colony oscillation, plus the sharp-threshold
// baseline's exact-feedback behaviour.
#include <gtest/gtest.h>

#include "aggregate/aggregate_sim.h"
#include "agent/agent_sim.h"
#include "algo/sharp_threshold.h"
#include "algo/trivial.h"
#include "metrics/oscillation.h"
#include "noise/exact.h"
#include "noise/sigmoid.h"

namespace antalloc {
namespace {

TEST(ReactiveParams, Validation) {
  EXPECT_THROW(ReactiveAgent(ReactiveParams{.leave_probability = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(ReactiveAggregate(ReactiveParams{.leave_probability = 1.5}),
               std::invalid_argument);
}

TEST(TrivialSynchronous, FullColonyOscillation) {
  // Appendix D.2: one task with demand n/4, all ants idle; under near-exact
  // feedback (steep sigmoid) the whole colony joins and leaves in lockstep.
  const Count n = 4000;
  const DemandVector demands({n / 4});
  ReactiveAggregate kernel(ReactiveParams{});
  const SigmoidFeedback fm(5.0);  // effectively exact near the threshold
  AggregateSimConfig cfg{.n_ants = n,
                         .rounds = 400,
                         .seed = 3,
                         .metrics = {.gamma = 0.05, .trace_stride = 1}};
  const auto res = run_aggregate_sim(kernel, fm, demands, cfg);
  const auto stats = analyze_trace_task(res.trace, 0, /*skip=*/10);
  // The deficit flips sign nearly every round and swings by Theta(n).
  EXPECT_GT(stats.crossing_rate(), 0.5);
  EXPECT_GT(stats.max_abs_deficit, n / 2);
  // Average regret is Theta(n) per round — catastrophically far.
  EXPECT_GT(res.average_regret(), static_cast<double>(n) / 4.0);
}

TEST(TrivialSequential, StaysNearDemand) {
  // Appendix D.1: the same rule in the sequential model self-corrects.
  const Count n = 4000;
  const DemandVector demands({n / 4});
  SigmoidFeedback fm(0.05);  // gamma* ~ ln(1e6)/ (0.05*1000) = 0.27
  const Allocation init(n, {demands[0]});  // start at the demand
  const auto res = run_trivial_sequential(
      n, demands, 40'000, fm, init,
      {.gamma = 0.05, .warmup = 10'000, .trace_stride = 10}, 5);
  // Regret stays bounded by a constant multiple of gamma* * d, far from the
  // Theta(n) blowup of the synchronous run.
  EXPECT_LT(res.post_warmup_average(), static_cast<double>(n) / 8.0);
  EXPECT_GT(res.post_warmup_average(), 0.0);
}

TEST(TrivialSequential, ValidatesColonySize) {
  const DemandVector demands({Count{10}});
  SigmoidFeedback fm(1.0);
  const Allocation init = Allocation::all_idle(5, 1);
  EXPECT_THROW(run_trivial_sequential(10, demands, 100, fm, init, {}, 1),
               std::invalid_argument);
}

TEST(SharpThreshold, SequentialExactConverges) {
  // The baseline's home turf: noiseless binary feedback in the sequential
  // model, where only one ant reacts per round — no flood.
  ExactFeedback fm;
  const DemandVector demands({Count{1000}, Count{500}});
  const Allocation init = Allocation::all_idle(6000, 2);
  const auto res = run_reactive_sequential(
      ReactiveParams{.leave_probability = kSharpThresholdLeaveProbability},
      6000, demands, 40'000, fm, init, {.gamma = 0.05, .warmup = 20'000}, 7);
  // Near-perfect: the deficit hovers within a couple of ants of zero.
  EXPECT_LT(res.post_warmup_average(), 10.0);
}

TEST(SharpThreshold, SynchronousExactFloodsAndOscillates) {
  // The same rule in the synchronous model breaks even WITHOUT noise: every
  // idle ant floods any lacking task simultaneously, then half the workers
  // leave on the resulting overload, re-creating the lack. This is exactly
  // the failure mode Algorithm Ant's stable zone eliminates, and it
  // motivates the slow join/leave rates of the paper's algorithms.
  auto kernel = make_sharp_threshold_aggregate();
  const ExactFeedback fm;
  const DemandVector demands({Count{1000}, Count{500}});
  AggregateSimConfig cfg{.n_ants = 6000,
                         .rounds = 2000,
                         .seed = 7,
                         .metrics = {.gamma = 0.05, .warmup = 1000,
                                     .trace_stride = 1}};
  const auto res = run_aggregate_sim(*kernel, fm, demands, cfg);
  EXPECT_GT(res.post_warmup_average(), 500.0);
  const auto stats = analyze_trace_task(res.trace, 0, 100);
  EXPECT_GT(stats.crossing_rate(), 0.2);
}

TEST(SharpThreshold, SequentialDegradesUnderWideGreyZone) {
  // Under a shallow sigmoid (wide grey zone) the same sequential baseline's
  // steady-state regret grows with the zone width: it has no mechanism to
  // stay out of the unreliable region.
  const DemandVector demands({Count{1000}, Count{500}});
  const Allocation init(6000, {Count{1000}, Count{500}});
  auto regret_at = [&](double lambda) {
    SigmoidFeedback fm(lambda);
    return run_reactive_sequential(
               ReactiveParams{.leave_probability =
                                  kSharpThresholdLeaveProbability},
               6000, demands, 60'000, fm, init,
               {.gamma = 0.05, .warmup = 30'000}, 7)
        .post_warmup_average();
  };
  const double sharp = regret_at(5.0);    // near-exact feedback
  const double shallow = regret_at(0.02); // grey zone ~ hundreds of ants
  EXPECT_GT(shallow, 3.0 * sharp);
}

TEST(ReactiveAgentAggregate, SameQualitativeBehaviour) {
  // Agent and aggregate forms of the trivial rule must both oscillate in the
  // synchronous model on the Appendix D.2 workload.
  const Count n = 1000;
  const DemandVector demands({n / 4});
  const SigmoidFeedback fm(5.0);

  ReactiveAgent agent(ReactiveParams{});
  AgentSimConfig acfg{.n_ants = n,
                      .rounds = 200,
                      .seed = 11,
                      .metrics = {.gamma = 0.05, .trace_stride = 1}};
  SigmoidFeedback fm_agent(5.0);
  const auto agent_res = run_agent_sim(agent, fm_agent, demands, acfg);
  const auto agent_stats = analyze_trace_task(agent_res.trace, 0, 10);

  ReactiveAggregate kernel(ReactiveParams{});
  AggregateSimConfig kcfg{.n_ants = n,
                          .rounds = 200,
                          .seed = 13,
                          .metrics = {.gamma = 0.05, .trace_stride = 1}};
  const auto agg_res = run_aggregate_sim(kernel, fm, demands, kcfg);
  const auto agg_stats = analyze_trace_task(agg_res.trace, 0, 10);

  EXPECT_GT(agent_stats.crossing_rate(), 0.5);
  EXPECT_GT(agg_stats.crossing_rate(), 0.5);
}

}  // namespace
}  // namespace antalloc
