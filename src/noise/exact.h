// Exact (noiseless) binary feedback: the substrate assumed by the DISC'14
// baseline [Cornejo et al.]. Every ant learns the true sign of the deficit:
// lack iff W(j) <= d(j) (i.e. Δ >= 0), overload otherwise.
#pragma once

#include "noise/feedback_model.h"

namespace antalloc {

class ExactFeedback final : public FeedbackModel {
 public:
  std::string_view name() const override { return "exact"; }
  bool deterministic() const override { return true; }

  double lack_probability(Round /*t*/, TaskId /*j*/, double deficit,
                          double /*demand*/) const override {
    return deficit >= 0.0 ? 1.0 : 0.0;
  }
};

}  // namespace antalloc
