// Tests for core/bits.h: the BMI2 PDEP fast path of nth_set_bit must agree
// with the naive clear-lowest-bit reference on every (mask, index) pair, and
// the reference itself must satisfy the select semantics (the returned
// position is a set bit with exactly `index` set bits below it).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "core/bits.h"
#include "rng/xoshiro.h"

namespace antalloc {
namespace {

// Select semantics, independent of either implementation.
void check_select(std::uint64_t mask, std::int32_t index, std::int32_t pos) {
  ASSERT_GE(pos, 0);
  ASSERT_LT(pos, 64);
  EXPECT_NE(mask & (std::uint64_t{1} << pos), 0u)
      << "mask=" << mask << " index=" << index;
  const std::uint64_t below = (std::uint64_t{1} << pos) - 1;
  EXPECT_EQ(std::popcount(mask & below), index)
      << "mask=" << mask << " index=" << index;
}

TEST(NthSetBit, ExhaustiveSmallMasks) {
  for (std::uint64_t mask = 1; mask < 1024; ++mask) {
    const std::int32_t bits = std::popcount(mask);
    for (std::int32_t index = 0; index < bits; ++index) {
      const std::int32_t ref = nth_set_bit_naive(mask, index);
      check_select(mask, index, ref);
      EXPECT_EQ(nth_set_bit(mask, index), ref)
          << "mask=" << mask << " index=" << index;
    }
  }
}

TEST(NthSetBit, RandomMasksAllDensities) {
  rng::Xoshiro256 gen(0xB17Bu);
  for (int iter = 0; iter < 20'000; ++iter) {
    std::uint64_t mask = gen();
    switch (iter % 3) {
      case 0: mask &= gen(); break;  // sparse (~16 bits)
      case 1: mask |= gen(); break;  // dense (~48 bits)
      default: break;                // uniform (~32 bits)
    }
    if (mask == 0) continue;
    const auto bits = static_cast<std::uint64_t>(std::popcount(mask));
    const auto index = static_cast<std::int32_t>(gen.uniform_below(bits));
    const std::int32_t got = nth_set_bit(mask, index);
    check_select(mask, index, got);
    EXPECT_EQ(got, nth_set_bit_naive(mask, index));
  }
}

TEST(NthSetBit, EdgeCases) {
  EXPECT_EQ(nth_set_bit(std::uint64_t{1}, 0), 0);
  EXPECT_EQ(nth_set_bit(std::uint64_t{1} << 63, 0), 63);
  // Full mask: selection is the identity.
  for (std::int32_t index = 0; index < 64; ++index) {
    EXPECT_EQ(nth_set_bit(~std::uint64_t{0}, index), index);
  }
  // Two far-apart bits.
  const std::uint64_t mask = (std::uint64_t{1} << 63) | 1u;
  EXPECT_EQ(nth_set_bit(mask, 0), 0);
  EXPECT_EQ(nth_set_bit(mask, 1), 63);
}

}  // namespace
}  // namespace antalloc
