// Chase–Lev work-stealing deque: the lock-free task store under
// parallel/task_graph.h, one per executor worker.
//
// Protocol (Chase & Lev, SPAA'05; memory orders after Lê, Pop, Cohen &
// Nardelli, PPoPP'13): the OWNER pushes and pops at the bottom — its common
// case is a plain load/store pair with no contention — while any number of
// THIEVES take from the top with a compare-and-swap on the top counter.
// Owner and thieves meet only when the deque is down to its last element,
// where the owner's pop and a thief's steal race on the same CAS; exactly
// one wins, so every pushed element is claimed exactly once. There is no
// mutex anywhere: this is what makes the executor's task hot path lock-free.
//
// Deviations from the letter of the PPoPP'13 code, both deliberate:
//  - top/bottom use seq_cst operations instead of standalone
//    atomic_thread_fence calls. ThreadSanitizer does not model standalone
//    fences (it would report false races on the Dekker-style
//    store-bottom/load-top handshake in pop vs steal), and the CI TSan job
//    is part of this deque's contract. The seq_cst total order gives the
//    same guarantee the fences did; the cost is nanoseconds on operations
//    that bound tasks costing microseconds to milliseconds.
//  - the ring grows instead of failing when full, and retired rings are
//    kept alive until the deque is destroyed: a thief that loaded the old
//    ring pointer may still read a slot from it, and that slot is never
//    reused after a grow (the owner only writes to the current ring), so
//    the stale read returns the correct value and the CAS on top decides
//    whether it counts.
//
// T must be trivially copyable (task handles — the executor stores raw
// TaskNode pointers). Slots are relaxed atomics: the release/acquire (and
// seq_cst) edges on bottom and top publish their contents.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace antalloc {

template <typename T>
class WsDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "WsDeque stores raw task handles");

 public:
  explicit WsDeque(std::size_t min_capacity = 64) {
    ring_.store(new Ring(round_up_pow2(min_capacity)),
                std::memory_order_relaxed);
  }

  ~WsDeque() {
    delete ring_.load(std::memory_order_relaxed);
    for (Ring* r : retired_) delete r;
  }

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  // Owner only: pushes one element at the bottom. Grows when full; never
  // blocks, never fails.
  void push(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* ring = ring_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(ring->capacity) - 1) {
      ring = grow(ring, t, b);
    }
    ring->slot(b).store(value, std::memory_order_relaxed);
    // seq_cst store so the sleep/wake Dekker handshake in the executor (push
    // bottom, then load the sleeper count) is ordered against a sleeper's
    // (bump sleeper count, then load bottom).
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  // Owner only: pops the most recently pushed element (LIFO). Returns false
  // when empty — including when a thief won the race for the last element.
  bool pop(T& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* ring = ring_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Already empty: restore bottom.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    out = ring->slot(b).load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race thieves for it via the top CAS.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }

  // Any thread: steals the oldest element (FIFO end). Returns false when
  // empty or when another thief (or the owner, on the last element) won the
  // CAS — callers treat false as "try elsewhere", not as an error.
  bool steal(T& out) {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;
    Ring* ring = ring_.load(std::memory_order_acquire);
    out = ring->slot(t).load(std::memory_order_relaxed);
    return top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed);
  }

  // Approximate size — owner/monitoring only (racy by nature; used for
  // "is there anything worth waking up for" hints, never for correctness).
  std::int64_t size_hint() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

  std::size_t capacity() const {
    return ring_.load(std::memory_order_relaxed)->capacity;
  }

 private:
  struct Ring {
    explicit Ring(std::size_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T>[cap]) {}
    std::atomic<T>& slot(std::int64_t index) {
      return slots[static_cast<std::size_t>(index) & mask];
    }
    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;
  };

  // Owner only: doubles the ring, copying the live range [t, b). The old
  // ring is retired, not freed — a concurrent thief may still read from it.
  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    Ring* bigger = new Ring(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    ring_.store(bigger, std::memory_order_release);
    retired_.push_back(old);
    return bigger;
  }

  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  // Top and bottom on separate cache lines: thieves hammer top, the owner
  // hammers bottom.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> ring_{nullptr};
  std::vector<Ring*> retired_;  // owner-only; freed with the deque
};

}  // namespace antalloc
