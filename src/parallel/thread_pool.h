// Compatibility façade over the work-stealing executor.
//
// ThreadPool predates parallel/task_graph.h and is kept as the stable
// public surface — submit/wait_idle/size plus the blocking parallel_for —
// while every call now lands on a TaskGraph. Existing callers keep
// compiling unchanged and silently gain the lock-free hot path, chunked
// parallel_for, and caller participation. New code that wants the bulk
// index API (run_indexed with completion hooks) should reach through
// graph() or talk to TaskGraph directly.
//
// Design notes (HPC guides): all parallelism is explicit; tasks must not
// touch shared mutable state except through their own index range; results
// are written to pre-sized slots so no synchronization is needed on the data
// path, and reproducibility is guaranteed by seeding RNG streams from the
// trial index rather than from the executing thread.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "parallel/task_graph.h"

namespace antalloc {

class ThreadPool {
 public:
  // threads == 0 picks hardware_concurrency (at least 1). Owns a private
  // executor of that width.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return graph_->size(); }

  // Enqueues a task. Unlike the historical pool (which had no propagation
  // channel), exceptions thrown by tasks are captured and the first one is
  // rethrown from wait_idle with its original type.
  void submit(std::function<void()> task) { graph_->submit(std::move(task)); }

  // Blocks until every submitted task has finished executing, then rethrows
  // the first exception any of them threw. The calling thread executes
  // pending tasks while it waits.
  void wait_idle() { graph_->wait_idle(); }

  // The executor underneath — for callers that want run_indexed, completion
  // hooks, or the steal counter.
  TaskGraph& graph() { return *graph_; }

 private:
  // Borrowing constructor used by global_pool(): wraps an executor owned
  // elsewhere (the global TaskGraph) instead of spawning a second set of
  // threads.
  explicit ThreadPool(TaskGraph& borrowed);
  friend ThreadPool& global_pool();

  std::unique_ptr<TaskGraph> owned_;
  TaskGraph* graph_;
};

// Runs body(i) for i in [begin, end) across the pool, blocking until done.
// Chunked: at most 4 stealable range-tasks per worker (one shared body, no
// per-iteration allocation). Exceptions thrown by `body` are captured — the
// remaining iterations still run — and the first one is rethrown on the
// calling thread with its original type after all iterations finish.
void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body);

// Shared process-wide pool. Borrows global_task_graph(), so a width pinned
// via set_global_task_graph_threads (the CLI's --jobs) applies here too.
ThreadPool& global_pool();

}  // namespace antalloc
