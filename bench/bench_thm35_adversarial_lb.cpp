// E9 — Theorem 3.5: in the adversarial noise model, EVERY algorithm has
// expected average regret >= (1 - o(1))·γ*·Σd.
//
// We instantiate the proof's construction: the indistinguishable demand pair
// d and d' = d(1 + 2γ^ad) with adversaries that produce identical feedback
// at every load. Any algorithm sees the same signal stream in both worlds,
// so the average of its regret in the two worlds is lower-bounded by τ·k =
// γ^ad·d·k per round. We run every algorithm in the registry through both
// worlds and report the measured two-world average against the bound.
#include "noise/adversarial.h"
#include "common.h"

using namespace antalloc;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const Count demand = args.get_int("demand", 20'000);
  const std::int32_t k = static_cast<std::int32_t>(args.get_int("k", 2));
  const double gamma_ad = args.get_double("gamma_ad", 0.04);
  const auto rounds = args.get_int("rounds", 30'000);
  const auto replicates = args.get_int("replicates", 4);
  args.check_unknown();

  const DemandVector d_world = uniform_demands(k, demand);
  const auto d_prime = static_cast<Count>(
      static_cast<double>(demand) * (1.0 + 2.0 * gamma_ad));
  const DemandVector dp_world = uniform_demands(k, d_prime);
  const Count n = 4 * dp_world.total();
  const double tau = gamma_ad * static_cast<double>(demand);
  const double bound = tau * static_cast<double>(k);

  bench::print_header(
      "E9 / Theorem 3.5: adversarial lower bound via indistinguishable "
      "demands",
      "avg regret over the two worlds >= tau*k = gamma_ad*d*k per round");
  std::printf("d=%lld, d'=%lld, tau=%.0f, per-round bound=%.0f\n\n",
              static_cast<long long>(demand), static_cast<long long>(d_prime),
              tau, bound);

  bench::BenchContext ctx("bench_thm35_adversarial_lb",
                          {"algorithm", "regret_world_d", "regret_world_d'",
                           "two_world_avg", "bound", "ratio"});

  // In-model algorithms only: the oracle knows the demands (the theorem's
  // premise excludes it) and the threshold baseline is agent-only.
  for (const auto& name : in_model_algorithm_names()) {
    AlgoConfig algo;
    algo.name = name;
    // Every algorithm gets the most favourable legal learning rate.
    algo.gamma = std::min(gamma_ad * 1.2, 1.0 / 16.0);
    algo.epsilon = 0.5;

    auto world_regret = [&](const DemandVector& demands, int sign) {
      ExperimentConfig cfg;
      cfg.algo = algo;
      cfg.n_ants = n;
      cfg.rounds = rounds;
      cfg.seed = 41;
      cfg.initial = InitialKind::kUniform;
      cfg.metrics.gamma = algo.gamma;
      cfg.metrics.warmup = rounds / 2;
      const auto results = run_replicated_experiment(
          cfg,
          [&] {
            return std::make_unique<AdversarialFeedback>(
                gamma_ad, make_indistinguishable_adversary(sign, gamma_ad));
          },
          DemandSchedule(demands), replicates);
      RunningStats s;
      for (const auto& r : results) s.add(r.post_warmup_average());
      return s.mean();
    };

    const double r_d = world_regret(d_world, +1);
    const double r_dp = world_regret(dp_world, -1);
    const double avg = 0.5 * (r_d + r_dp);
    ctx.table.add_row({name, Table::fmt(r_d, 5), Table::fmt(r_dp, 5),
                       Table::fmt(avg, 5), Table::fmt(bound, 5),
                       Table::fmt(avg / bound, 3)});
    // The lower bound must hold for every algorithm (0.9: o(1) slack).
    if (avg < 0.9 * bound) ctx.exit_code = 1;
  }
  return ctx.finish();
}
