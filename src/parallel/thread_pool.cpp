#include "parallel/thread_pool.h"

#include <algorithm>

namespace antalloc {

ThreadPool::ThreadPool(std::size_t threads)
    : owned_(std::make_unique<TaskGraph>(threads)), graph_(owned_.get()) {}

ThreadPool::ThreadPool(TaskGraph& borrowed) : graph_(&borrowed) {}

ThreadPool::~ThreadPool() = default;

void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body) {
  if (begin >= end) return;
  // Block decomposition: at most 4 blocks per worker keeps scheduling
  // overhead low while still smoothing imbalance (stealing rebalances the
  // blocks themselves).
  const std::int64_t total = end - begin;
  const std::int64_t max_blocks = static_cast<std::int64_t>(pool.size()) * 4;
  const std::int64_t blocks = std::min<std::int64_t>(total, max_blocks);
  const std::int64_t grain = (total + blocks - 1) / blocks;
  pool.graph().run_indexed(begin, end, grain, body);
}

ThreadPool& global_pool() {
  static ThreadPool pool(global_task_graph());
  return pool;
}

}  // namespace antalloc
