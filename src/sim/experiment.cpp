#include "sim/experiment.h"

#include <stdexcept>

#include "agent/agent_sim.h"
#include "aggregate/aggregate_sim.h"
#include "parallel/trial_runner.h"
#include "rng/splitmix.h"

namespace antalloc {
namespace {

// Substream tag separating initial-allocation randomness from the dynamics
// stream: both derive from cfg.seed, but a "random" start must not reuse the
// exact seed the engines consume for feedback/decision draws.
constexpr std::uint64_t kInitialAllocationStream = 0xA110C;

std::vector<Count> initial_loads(const ExperimentConfig& cfg,
                                 std::int32_t k) {
  if (!cfg.initial_loads.empty()) {
    if (static_cast<std::int32_t>(cfg.initial_loads.size()) != k) {
      throw std::invalid_argument(
          "run_experiment: initial_loads size does not match the schedule's "
          "task count");
    }
    return cfg.initial_loads;
  }
  const Allocation alloc = make_initial_allocation(
      cfg.initial, cfg.n_ants, k,
      rng::hash_combine(cfg.seed, kInitialAllocationStream));
  return {alloc.loads().begin(), alloc.loads().end()};
}

}  // namespace

Engine parse_engine(std::string_view name) {
  if (name == "auto") return Engine::kAuto;
  if (name == "aggregate") return Engine::kAggregate;
  if (name == "agent") return Engine::kAgent;
  throw std::invalid_argument("parse_engine: unknown engine '" +
                              std::string(name) +
                              "' (expected auto | aggregate | agent)");
}

std::string_view to_string(Engine engine) {
  switch (engine) {
    case Engine::kAuto: return "auto";
    case Engine::kAggregate: return "aggregate";
    case Engine::kAgent: return "agent";
  }
  return "?";
}

Engine resolve_engine(Engine engine, const AlgoConfig& algo,
                      const FeedbackModel& fm) {
  if (engine != Engine::kAuto) return engine;
  if (!has_aggregate_kernel(algo.name)) return Engine::kAgent;
  // Ask the kernel itself — supports() is the single source of truth for
  // which models a kernel simulates exactly.
  return make_aggregate_kernel(algo)->supports(fm) ? Engine::kAggregate
                                                   : Engine::kAgent;
}

MetricsRecorder::Options resolved_metrics(const ExperimentConfig& cfg) {
  // Keep the regret-band gamma in sync with the algorithm's learning rate
  // unless the caller overrode it explicitly.
  MetricsRecorder::Options metrics = cfg.metrics;
  if (metrics.gamma <= 0.0) metrics.gamma = cfg.algo.gamma;
  return metrics;
}

SimResult run_experiment(const ExperimentConfig& cfg, FeedbackModel& fm,
                         const DemandSchedule& schedule) {
  const std::int32_t k = schedule.num_tasks();
  const auto loads = initial_loads(cfg, k);
  const MetricsRecorder::Options metrics = resolved_metrics(cfg);

  switch (resolve_engine(cfg.engine, cfg.algo, fm)) {
    case Engine::kAggregate: {
      auto kernel = make_aggregate_kernel(cfg.algo);
      AggregateSimConfig sim{.n_ants = cfg.n_ants,
                             .rounds = cfg.rounds,
                             .seed = cfg.seed,
                             .metrics = metrics,
                             .initial_loads = loads};
      return run_aggregate_sim(*kernel, fm, schedule, sim);
    }
    case Engine::kAgent: {
      auto algo = make_agent_algorithm(cfg.algo);
      AgentSimConfig sim{.n_ants = cfg.n_ants,
                         .rounds = cfg.rounds,
                         .seed = cfg.seed,
                         .metrics = metrics,
                         .initial_loads = loads,
                         .sampling = cfg.sampling};
      return run_agent_sim(*algo, fm, schedule, sim);
    }
    case Engine::kAuto:
      break;  // resolve_engine never returns kAuto
  }
  throw std::logic_error("run_experiment: unresolved engine");
}

SimResult run_replicate(const ExperimentConfig& cfg,
                        const ModelFactory& make_model,
                        const DemandSchedule& schedule, std::int64_t trial,
                        const SinkFactory& make_sink) {
  const std::uint64_t seed =
      rng::hash_combine(cfg.seed, static_cast<std::uint64_t>(trial));
  ExperimentConfig trial_cfg = cfg;
  trial_cfg.seed = seed;
  auto model = make_model();
  std::unique_ptr<RoundSink> sink = make_sink ? make_sink(trial, seed) : nullptr;
  trial_cfg.metrics.sink = sink.get();
  SimResult result = run_experiment(trial_cfg, *model, schedule);
  // Close here, not in the destructor: deferred writer-thread I/O errors
  // must surface as exceptions out of the trial, not vanish.
  if (sink) sink->close();
  return result;
}

std::vector<SimResult> run_replicated_experiment(
    const ExperimentConfig& cfg, const ModelFactory& make_model,
    const DemandSchedule& schedule, std::int64_t replicates, ThreadPool* pool,
    const SinkFactory& make_sink) {
  return run_sim_trials(
      replicates, cfg.seed,
      [&](std::int64_t trial, std::uint64_t /*seed*/) {
        return run_replicate(cfg, make_model, schedule, trial, make_sink);
      },
      pool);
}

std::vector<double> extract_metric(const std::vector<SimResult>& results,
                                   std::string_view name) {
  std::vector<double> out;
  out.reserve(results.size());
  for (const auto& r : results) {
    if (const double* value = r.find_metric(name)) {
      out.push_back(*value);
    } else if (name == "regret") {
      out.push_back(r.post_warmup_average());
    } else if (name == "violations") {
      out.push_back(static_cast<double>(r.violation_rounds));
    } else if (name == "switches_per_ant_round") {
      out.push_back(r.rounds > 0 && r.n_ants > 0
                        ? static_cast<double>(r.switches) /
                              static_cast<double>(r.rounds) /
                              static_cast<double>(r.n_ants)
                        : 0.0);
    } else {
      // Not recorded and not legacy-derivable: re-run with the metric
      // selected (ExperimentConfig::metrics.names).
      r.metric(name);  // throws, naming the recorded scalars
    }
  }
  return out;
}

std::vector<double> extract_post_warmup_average(
    const std::vector<SimResult>& results) {
  return extract_metric(results, "regret");
}

std::vector<double> extract_closeness(const std::vector<SimResult>& results,
                                      double gamma_star, Count total_demand) {
  std::vector<double> out = extract_metric(results, "regret");
  const double denom = gamma_star * static_cast<double>(total_demand);
  for (double& value : out) value = denom > 0.0 ? value / denom : 0.0;
  return out;
}

}  // namespace antalloc
