// The "trivial" reactive algorithm (paper Appendix D) and its sequential-
// model runner.
//
// Rule, applied by every ant each round: an idle ant that sees lack at some
// task joins one such task uniformly at random; a working ant leaves (with
// probability `leave_probability`) when it sees overload at its own task.
// The paper's trivial algorithm has leave_probability = 1; the damped
// variant (0.5) doubles as our stand-in for the DISC'14 exact-feedback
// baseline (see sharp_threshold.h).
//
// Appendix D shows this rule behaves very differently per model:
//  * sequential model (one uniformly random ant acts per round): regret
//    Θ(γ*·Σd) — perfectly fine;
//  * synchronous model: full-colony oscillations for e^{Ω(n)} rounds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algo/algorithm.h"
#include "metrics/regret.h"

namespace antalloc {

struct ReactiveParams {
  double leave_probability = 1.0;  // applied on seeing own-task overload
};

class ReactiveAgent final : public AgentAlgorithm {
 public:
  ReactiveAgent(ReactiveParams params, std::string name = "trivial");

  std::string_view name() const override { return name_; }

  void reset(Count n_ants, std::int32_t k, std::span<const TaskId> initial,
             std::uint64_t seed) override;
  void step(Round t, const FeedbackAccess& fb, std::span<const TaskId> prev,
            std::span<TaskId> next) override;

 private:
  ReactiveParams params_;
  std::string name_;
  std::uint64_t seed_ = 0;
  std::int32_t k_ = 0;
};

class ReactiveAggregate final : public AggregateKernel {
 public:
  ReactiveAggregate(ReactiveParams params, std::string name = "trivial");

  std::string_view name() const override { return name_; }

  void reset(const Allocation& initial, std::uint64_t seed) override;
  RoundOutput step(Round t, const DemandVector& demands,
                   const FeedbackModel& fm) override;
  // The reactive rule is memoryless, so flushed ants are ordinary idle ants
  // from the next round on — no phase boundary to wait for.
  Count apply_lifecycle(Round t, const ActiveSet& active) override;

 private:
  ReactiveParams params_;
  std::string name_;
  rng::Xoshiro256 gen_;
  Count idle_ = 0;
  std::vector<Count> loads_;
  std::vector<Count> prev_loads_;
  std::vector<double> scratch_;
  std::vector<std::uint8_t> task_active_;  // lifecycle flags (1 = active)
};

// Sequential-model run (Appendix D.1): in each round exactly one uniformly
// random ant receives feedback (reflecting the current loads) and applies
// the reactive rule with the given leave probability. Returns the usual
// summary; note that one sequential round moves at most one ant, so time
// scales differ from the synchronous engines by a factor ~n.
SimResult run_reactive_sequential(ReactiveParams params, Count n_ants,
                                  const DemandVector& demands, Round rounds,
                                  FeedbackModel& fm, const Allocation& initial,
                                  MetricsRecorder::Options metrics,
                                  std::uint64_t seed);

// The paper's trivial algorithm (leave probability 1) in the sequential
// model.
SimResult run_trivial_sequential(Count n_ants, const DemandVector& demands,
                                 Round rounds, FeedbackModel& fm,
                                 const Allocation& initial,
                                 MetricsRecorder::Options metrics,
                                 std::uint64_t seed);

}  // namespace antalloc
