// Minimal command-line flag parser for bench and example binaries.
// Supports --name=value and --name value; unknown flags are an error so
// typos do not silently run the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace antalloc {

class Args {
 public:
  Args(int argc, char** argv);

  // Declares a flag with a default; returns the parsed value. Declaring is
  // also what marks the flag as known.
  std::int64_t get_int(const std::string& name, std::int64_t def);
  double get_double(const std::string& name, double def);
  std::string get_string(const std::string& name, const std::string& def);
  bool get_bool(const std::string& name, bool def);

  // Call after all get_* declarations: throws on unknown flags.
  void check_unknown() const;

  // One-line usage summary of all declared flags with their defaults.
  std::string help() const;

 private:
  const std::string* find(const std::string& name);

  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
  std::vector<std::string> declared_;  // "name=default" for help()
};

}  // namespace antalloc
