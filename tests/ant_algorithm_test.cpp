// Behavioural tests for Algorithm Ant: phase anatomy (two spaced samples),
// the stable zone, convergence into the 5γd band, and self-stabilization.
#include <gtest/gtest.h>

#include <cmath>

#include "aggregate/aggregate_sim.h"
#include "agent/agent_sim.h"
#include "algo/ant.h"
#include "core/critical_value.h"
#include "noise/exact.h"
#include "noise/sigmoid.h"

namespace antalloc {
namespace {

constexpr double kLambda = 1.0;

TEST(AntParams, Validation) {
  EXPECT_THROW(AntAgent(AntParams{.gamma = 0.0}), std::invalid_argument);
  EXPECT_THROW(AntAgent(AntParams{.gamma = 1.5}), std::invalid_argument);
  EXPECT_THROW(AntAgent(AntParams{.gamma = 0.9, .cs = 2.4}),
               std::invalid_argument);  // cs*gamma > 1
  EXPECT_NO_THROW(AntAgent(AntParams{.gamma = 0.05}));
  const AntParams p{.gamma = 0.02};
  EXPECT_NEAR(p.pause_probability(), 0.048, 1e-12);
  EXPECT_NEAR(p.leave_probability(), 0.02 / 19.0, 1e-12);
}

TEST(AntAggregate, PauseReducesSecondSampleLoad) {
  // Start fully saturated on one task; after the odd round the visible load
  // must be ~ W(1 - cs*gamma).
  const AntParams params{.gamma = 0.02};
  AntAggregate kernel(params);
  const DemandVector demands({Count{10'000}});
  const Allocation init(40'000, {Count{10'000}});
  kernel.reset(init, 7);
  const SigmoidFeedback fm(kLambda);
  const auto out = kernel.step(1, demands, fm);
  const double expected = 10'000.0 * (1.0 - params.pause_probability());
  EXPECT_NEAR(static_cast<double>(out.loads[0]), expected,
              5.0 * std::sqrt(10'000.0 * params.pause_probability()));
  // Even round restores the committed ants (minus rare leavers).
  const auto out2 = kernel.step(2, demands, fm);
  EXPECT_GE(out2.loads[0], out.loads[0]);
}

TEST(AntAggregate, ConvergesIntoDeficitBandFromIdle) {
  const double gamma = 0.05;
  const DemandVector demands({Count{2000}, Count{2000}});
  AntAggregate kernel(AntParams{.gamma = gamma});
  const SigmoidFeedback fm(kLambda);
  AggregateSimConfig cfg{.n_ants = 10'000,
                         .rounds = 4000,
                         .seed = 11,
                         .metrics = {.gamma = gamma, .warmup = 2000}};
  const auto res = run_aggregate_sim(kernel, fm, demands, cfg);
  // Post-warmup, every task must sit within the Theorem 3.1 band on average:
  // regret per round <= (5*gamma*d + 3) per task.
  const double band = 2.0 * (5.0 * gamma * 2000.0 + 3.0);
  EXPECT_LT(res.post_warmup_average(), band);
  // And the final loads must be near the demands.
  for (int j = 0; j < 2; ++j) {
    EXPECT_NEAR(static_cast<double>(res.final_loads[static_cast<std::size_t>(j)]),
                2000.0, 5.0 * gamma * 2000.0 + 3.0);
  }
}

TEST(AntAggregate, RecoversFromHostileStart) {
  // All ants crammed onto task 0; self-stabilization must drain the overload
  // and fill task 1.
  const double gamma = 0.05;
  const DemandVector demands({Count{2000}, Count{2000}});
  AntAggregate kernel(AntParams{.gamma = gamma});
  const SigmoidFeedback fm(kLambda);
  AggregateSimConfig cfg{.n_ants = 10'000,
                         .rounds = 6000,
                         .seed = 13,
                         .metrics = {.gamma = gamma, .warmup = 4000},
                         .initial_loads = {Count{10'000}, Count{0}}};
  const auto res = run_aggregate_sim(kernel, fm, demands, cfg);
  EXPECT_NEAR(static_cast<double>(res.final_loads[0]), 2000.0, 350.0);
  EXPECT_NEAR(static_cast<double>(res.final_loads[1]), 2000.0, 350.0);
}

TEST(AntAggregate, TracksDemandChange) {
  const double gamma = 0.05;
  DemandSchedule schedule(uniform_demands(1, 2000));
  schedule.add_change(3001, uniform_demands(1, 3000));
  AntAggregate kernel(AntParams{.gamma = gamma});
  const SigmoidFeedback fm(kLambda);
  AggregateSimConfig cfg{.n_ants = 10'000,
                         .rounds = 8000,
                         .seed = 17,
                         .metrics = {.gamma = gamma}};
  const auto res = run_aggregate_sim(kernel, fm, schedule, cfg);
  EXPECT_NEAR(static_cast<double>(res.final_loads[0]), 3000.0,
              5.0 * gamma * 3000.0 + 50.0);
}

TEST(AntAggregate, StableZoneAbsorbsUnderExactFeedback) {
  // Under exact feedback (no grey zone) a load inside the paper's stable
  // zone [d(1+gamma), d(1+(0.9cs-1)gamma)] must not move at phase
  // boundaries: the first sample always shows overload (no joins) and the
  // second, reduced sample shows lack (no leaves).
  const AntParams params{.gamma = 0.05};
  const Count d = 10'000;
  // Pick the middle of the stable zone.
  const double lo = 1.0 + params.gamma;
  const double hi = 1.0 + (0.9 * params.cs - 1.0) * params.gamma;
  const auto w0 = static_cast<Count>(static_cast<double>(d) * (lo + hi) / 2.0);
  AntAggregate kernel(params);
  const ExactFeedback fm;
  const DemandVector demands({d});
  kernel.reset(Allocation(40'000, {w0}), 23);
  Count committed = w0;
  for (Round t = 1; t <= 400; ++t) {
    const auto out = kernel.step(t, demands, fm);
    if (t % 2 == 0) {
      committed = out.loads[0];
      EXPECT_EQ(committed, w0) << "round " << t;
    }
  }
}

TEST(AntAgent, TinyColonyRunsAndConverges) {
  // Agent engine on a small colony: loads must approach the demand.
  const double gamma = 0.1;
  AntAgent algo(AntParams{.gamma = gamma});
  SigmoidFeedback fm(2.0);
  const DemandVector demands({Count{100}, Count{100}});
  AgentSimConfig cfg{.n_ants = 500,
                     .rounds = 2000,
                     .seed = 31,
                     .metrics = {.gamma = gamma, .warmup = 1000}};
  const auto res = run_agent_sim(algo, fm, demands, cfg);
  EXPECT_NEAR(static_cast<double>(res.final_loads[0]), 100.0, 60.0);
  EXPECT_NEAR(static_cast<double>(res.final_loads[1]), 100.0, 60.0);
  EXPECT_GT(res.switches, 0);
}

TEST(AntAgent, RejectsTooManyTasks) {
  AntAgent algo(AntParams{.gamma = 0.05});
  std::vector<TaskId> init(10, kIdle);
  EXPECT_THROW(algo.reset(10, kMaxAgentTasks + 1, init, 1),
               std::invalid_argument);
}

TEST(AntAggregate, RegretSlopeScalesWithGamma) {
  // Theorem 3.1: steady-state regret per round ~ 5*gamma*total_demand.
  // Doubling gamma should roughly double the slope (within noise).
  const DemandVector demands({Count{4000}});
  const SigmoidFeedback fm(kLambda);
  auto slope_for = [&](double gamma) {
    AntAggregate kernel(AntParams{.gamma = gamma});
    AggregateSimConfig cfg{.n_ants = 16'000,
                           .rounds = 6000,
                           .seed = 37,
                           .metrics = {.gamma = gamma, .warmup = 3000}};
    return run_aggregate_sim(kernel, fm, demands, cfg).post_warmup_average();
  };
  const double s1 = slope_for(0.04);
  const double s2 = slope_for(0.08);
  EXPECT_GT(s2, 1.3 * s1);
  EXPECT_LT(s2, 3.5 * s1);
}

}  // namespace
}  // namespace antalloc
