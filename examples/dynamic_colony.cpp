// Dynamic colony: the self-stabilization story, told through the scenario
// registry. A campaign runs Algorithm Ant over every dynamic demand process
// in the zoo — day/night flips, seasonal rotation, drifting ramps,
// correlated shocks, colony growth + mass death — and the colony re-balances
// every time without any coordination or restart, exactly as Remark 3.4
// promises. A detailed day/night trace shows one recovery up close.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/dynamic_colony
#include <cstdio>

#include "core/critical_value.h"
#include "noise/sigmoid.h"
#include "sim/campaign.h"
#include "stats/histogram.h"

using namespace antalloc;

int main() {
  const std::int32_t k = 3;
  const DemandVector base = uniform_demands(k, 6000);
  const Count n = 8 * base.total() / k;

  const double lambda = 0.35;
  const double gamma = 1.5 * critical_value_at(lambda, base, 1e-6);
  const Round horizon = 24'000;

  // The dynamic slice of the registry: every family whose demands move.
  CampaignConfig campaign;
  for (const char* family :
       {"day-night", "seasonal", "ramp-drift", "correlated-shocks",
        "growth-death", "mass-death"}) {
    ScenarioSpec spec;
    spec.name = family;
    spec.initial = InitialKind::kRandom;
    spec.seed = 7;
    campaign.scenarios.push_back(make_scenario(spec, base, horizon));
  }
  campaign.algos = {AlgoConfig{.name = "ant", .gamma = gamma}};
  campaign.noises = {
      {"sigmoid", [&] { return std::make_unique<SigmoidFeedback>(lambda); }}};
  campaign.engine = Engine::kAggregate;
  campaign.n_ants = n;
  campaign.rounds = horizon;
  campaign.seed = 7;
  campaign.replicates = 4;
  campaign.metrics.gamma = gamma;

  std::printf("Dynamic colony, k=%d tasks, n=%lld ants, gamma=%.4f\n\n", k,
              static_cast<long long>(n), gamma);
  std::printf("self-stabilization across the scenario zoo (%lld demand "
              "processes x %lld replicates):\n\n",
              static_cast<long long>(campaign.scenarios.size()),
              static_cast<long long>(campaign.replicates));
  const CampaignResult result = run_campaign(campaign);
  std::printf("%s\n", result.table().render().c_str());

  // One recovery up close: the day/night scenario's deficit trace.
  const Scenario& day_night = campaign.scenarios.front();
  ExperimentConfig cfg;
  cfg.algo = campaign.algos.front();
  cfg.n_ants = n;
  cfg.rounds = horizon;
  cfg.seed = 7;
  cfg.initial = InitialKind::kRandom;
  cfg.metrics.gamma = gamma;
  cfg.metrics.trace_stride = 50;
  SigmoidFeedback noise(lambda);
  const SimResult detail = run_experiment(cfg, noise, day_night.schedule);

  std::printf("relative deficit of task 0 over time, %s (one row per "
              "kiloround):\n",
              day_night.name.c_str());
  for (std::size_t i = 0; i < detail.trace.size(); i += 20) {
    const Round t = detail.trace.round_at(i);
    const auto& d = day_night.schedule.demands_at(t);
    const auto deficit = static_cast<double>(detail.trace.deficit_at(i, 0));
    const int offset =
        30 + static_cast<int>(30.0 * deficit / static_cast<double>(d[0]));
    std::printf("t=%6lld d(0)=%5lld |%*s\n", static_cast<long long>(t),
                static_cast<long long>(d[0]),
                std::max(1, std::min(60, offset)), "*");
  }

  // Distribution of per-round regret, relative to the worst-case budget.
  Histogram hist(0.0, 2.0 * 5.0 * gamma * static_cast<double>(base.total()),
                 12);
  for (std::size_t i = 0; i < detail.trace.size(); ++i) {
    hist.add(static_cast<double>(detail.trace.regret_at(i)));
  }
  std::printf("\nper-round regret distribution (shock spikes form the tail):\n%s",
              hist.render(40).c_str());
  std::printf("\naverage regret %.1f/round over %lld rounds with %lld demand "
              "changes\n",
              detail.average_regret(), static_cast<long long>(horizon),
              static_cast<long long>(day_night.schedule.num_changes()));
  return 0;
}
