// Adversarial colony: what happens when the environment actively lies?
//
// Inside the grey zone |deficit| <= gamma_ad * d the adversary controls every
// signal. This example pits Algorithm Ant and Algorithm Precise Adversarial
// against the full adversary gallery and shows that (a) both stay close
// despite worst-case lies, and (b) Precise Adversarial additionally almost
// never makes its ants switch tasks (Theorem 3.6).
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/adversarial_colony
#include <cstdio>
#include <memory>

#include "agent/agent_sim.h"
#include "algo/registry.h"
#include "noise/adversarial.h"

using namespace antalloc;

int main() {
  const Count demand = 3000;
  const DemandVector demands({demand, demand});
  const Count n = 4 * demands.total();
  const double gamma_ad = 0.02;  // adversary owns +-2% of each demand
  const double gamma = 0.05;

  struct Case {
    const char* name;
    std::unique_ptr<GreyZoneAdversary> (*make)();
  };
  const Case adversaries[] = {
      {"honest", [] { return make_honest_adversary(); }},
      {"always-lack", [] { return make_always_lack_adversary(); }},
      {"always-overload", [] { return make_always_overload_adversary(); }},
      {"anti-gradient", [] { return make_anti_gradient_adversary(); }},
      {"alternating", [] { return make_alternating_adversary(); }},
  };

  std::printf("Adversarial grey zone: +-%.0f ants around each demand of %lld\n\n",
              gamma_ad * static_cast<double>(demand),
              static_cast<long long>(demand));
  std::printf("%-16s %-22s %12s %14s\n", "adversary", "algorithm",
              "avg regret", "switches/ant/rd");

  for (const auto& adv : adversaries) {
    for (const char* algo_name : {"ant", "precise-adversarial"}) {
      AlgoConfig algo{.name = algo_name, .gamma = gamma, .epsilon = 0.5};
      auto agent = make_agent_algorithm(algo);
      AdversarialFeedback fm(gamma_ad, adv.make());
      // Warm start just above the demand (see DESIGN.md: the precise
      // algorithms are steady-state machines; cold-start drains are long).
      const auto warm =
          static_cast<Count>(static_cast<double>(demand) * (1.0 + gamma));
      const Round rounds = 6400;
      AgentSimConfig sim{.n_ants = n,
                         .rounds = rounds,
                         .seed = 11,
                         .metrics = {.gamma = gamma, .warmup = rounds / 2},
                         .initial_loads = {warm, warm}};
      const auto res = run_agent_sim(*agent, fm, demands, sim);
      std::printf("%-16s %-22s %12.1f %14.5f\n", adv.name, algo_name,
                  res.post_warmup_average(),
                  static_cast<double>(res.switches) /
                      static_cast<double>(res.rounds) /
                      static_cast<double>(n));
    }
  }
  std::printf("\n(Theorem 3.5 floor: any algorithm pays >= ~gamma_ad*sum(d) = "
              "%.0f per round in the worst case.)\n",
              gamma_ad * static_cast<double>(demands.total()));
  return 0;
}
