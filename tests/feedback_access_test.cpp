// Tests for the FeedbackAccess oracle the agent engine hands to algorithms:
// per-(round, ant, task) determinism, mask packing, and the out-of-model
// demand accessor.
#include <gtest/gtest.h>

#include <bit>

#include "algo/algorithm.h"
#include "noise/exact.h"
#include "noise/sigmoid.h"

namespace antalloc {
namespace {

TEST(FeedbackAccess, SameCellSameDraw) {
  SigmoidFeedback fm(1.0);
  const std::vector<double> deficits{0.0, 0.0};  // fair coins
  const std::vector<Count> demands{Count{100}, Count{100}};
  const FeedbackAccess fb(fm, 7, deficits, demands, 99);
  for (int ant = 0; ant < 50; ++ant) {
    for (TaskId j = 0; j < 2; ++j) {
      EXPECT_EQ(fb.sample(ant, j), fb.sample(ant, j));
    }
  }
}

TEST(FeedbackAccess, CellsAreIndependentAcrossCoordinates) {
  SigmoidFeedback fm(1.0);
  const std::vector<double> deficits{0.0};
  const std::vector<Count> demands{Count{100}};
  const FeedbackAccess r1(fm, 1, deficits, demands, 99);
  const FeedbackAccess r2(fm, 2, deficits, demands, 99);
  // At a fair coin, 64 ants agreeing across two rounds is a 2^-64 event.
  int agreements = 0;
  for (int ant = 0; ant < 64; ++ant) {
    if (r1.sample(ant, 0) == r2.sample(ant, 0)) ++agreements;
  }
  EXPECT_GT(agreements, 0);
  EXPECT_LT(agreements, 64);
}

TEST(FeedbackAccess, SeedChangesDraws) {
  SigmoidFeedback fm(1.0);
  const std::vector<double> deficits{0.0};
  const std::vector<Count> demands{Count{100}};
  const FeedbackAccess a(fm, 1, deficits, demands, 1);
  const FeedbackAccess b(fm, 1, deficits, demands, 2);
  int diffs = 0;
  for (int ant = 0; ant < 200; ++ant) {
    if (a.sample(ant, 0) != b.sample(ant, 0)) ++diffs;
  }
  EXPECT_GT(diffs, 50);
}

TEST(FeedbackAccess, MaskMatchesPerTaskSamples) {
  SigmoidFeedback fm(1.0);
  const std::vector<double> deficits{5.0, -5.0, 0.0};
  const std::vector<Count> demands{Count{100}, Count{100}, Count{100}};
  const FeedbackAccess fb(fm, 3, deficits, demands, 17);
  for (int ant = 0; ant < 30; ++ant) {
    const std::uint64_t mask = fb.sample_lack_mask(ant);
    for (TaskId j = 0; j < 3; ++j) {
      const bool bit = (mask >> j) & 1;
      EXPECT_EQ(bit, fb.sample(ant, j) == Feedback::kLack)
          << "ant " << ant << " task " << j;
    }
    EXPECT_EQ(mask >> 3, 0u);  // no stray bits
  }
}

TEST(FeedbackAccess, ExactFeedbackMaskIsDeterministic) {
  ExactFeedback fm;
  const std::vector<double> deficits{1.0, -1.0};
  const std::vector<Count> demands{Count{10}, Count{10}};
  const FeedbackAccess fb(fm, 1, deficits, demands, 5);
  for (int ant = 0; ant < 10; ++ant) {
    EXPECT_EQ(fb.sample_lack_mask(ant), 0b01u);
  }
}

TEST(FeedbackAccess, DemandAccessor) {
  SigmoidFeedback fm(1.0);
  const std::vector<double> deficits{0.0, 0.0};
  const std::vector<Count> demands{Count{123}, Count{456}};
  const FeedbackAccess fb(fm, 1, deficits, demands, 5);
  EXPECT_EQ(fb.num_tasks(), 2);
  EXPECT_EQ(fb.demand(0), 123);
  EXPECT_EQ(fb.demand(1), 456);
}

}  // namespace
}  // namespace antalloc
