#include "net/protocol.h"

#include <bit>
#include <cstring>

#include "rng/splitmix.h"

namespace antalloc {

namespace {

std::uint64_t frame_checksum(std::span<const std::uint8_t> header_and_payload) {
  return rng::hash_bytes(
      reinterpret_cast<const char*>(header_and_payload.data()),
      header_and_payload.size());
}

std::uint32_t read_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t read_u64le(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(read_u32le(p)) |
         (static_cast<std::uint64_t>(read_u32le(p + 4)) << 32);
}

void write_u32le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void write_u64le(std::uint8_t* p, std::uint64_t v) {
  write_u32le(p, static_cast<std::uint32_t>(v));
  write_u32le(p + 4, static_cast<std::uint32_t>(v >> 32));
}

// Decodes a wire enum byte into E, throwing the torn-payload error on a
// value outside [0, max] — an unregistered enum is an encoder/decoder
// disagreement, not transport damage.
template <typename E>
E decode_enum(std::uint8_t v, std::uint8_t max, const char* what) {
  if (v > max) {
    throw ProtocolTornPayloadError(std::string("torn payload: ") + what +
                                   " holds unregistered value " +
                                   std::to_string(v));
  }
  return static_cast<E>(v);
}

}  // namespace

// ByteWriter. ----------------------------------------------------------------

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void ByteWriter::strings(const std::vector<std::string>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (const std::string& s : v) str(s);
}

// ByteReader. ----------------------------------------------------------------

void ByteReader::need(std::size_t n) const {
  if (pos_ + n > bytes_.size()) {
    throw ProtocolTornPayloadError(
        "torn payload: field needs " + std::to_string(n) + " bytes at offset " +
        std::to_string(pos_) + " but only " +
        std::to_string(bytes_.size() - pos_) + " remain");
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  const std::uint16_t v = static_cast<std::uint16_t>(
      bytes_[pos_] | (static_cast<std::uint16_t>(bytes_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  const std::uint32_t v = read_u32le(bytes_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  const std::uint64_t v = read_u64le(bytes_.data() + pos_);
  pos_ += 8;
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<std::string> ByteReader::strings() {
  const std::uint32_t n = u32();
  std::vector<std::string> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(str());
  return out;
}

// Handshake. -----------------------------------------------------------------

std::array<std::uint8_t, kHelloBytes> encode_hello() {
  std::array<std::uint8_t, kHelloBytes> hello{};
  std::memcpy(hello.data(), kNetMagic.data(), kNetMagic.size());
  hello[6] = static_cast<std::uint8_t>(kNetVersion);
  hello[7] = static_cast<std::uint8_t>(kNetVersion >> 8);
  return hello;
}

void check_hello(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHelloBytes) {
    throw ProtocolTruncatedError("hello truncated: got " +
                                 std::to_string(bytes.size()) + " of " +
                                 std::to_string(kHelloBytes) + " bytes");
  }
  if (std::memcmp(bytes.data(), kNetMagic.data(), kNetMagic.size()) != 0) {
    throw ProtocolBadMagicError(
        "bad magic: peer did not send the antNET handshake");
  }
  const std::uint16_t version = static_cast<std::uint16_t>(
      bytes[6] | (static_cast<std::uint16_t>(bytes[7]) << 8));
  if (version != kNetVersion) {
    throw ProtocolVersionError("protocol version skew: peer speaks version " +
                               std::to_string(version) + ", this build " +
                               std::to_string(kNetVersion));
  }
}

// Message codecs. ------------------------------------------------------------

namespace {

void encode_state(ByteWriter& w, const RunningStats::State& s) {
  w.i64(s.count);
  w.f64(s.mean);
  w.f64(s.m2);
  w.f64(s.min);
  w.f64(s.max);
}

RunningStats::State decode_state(ByteReader& r) {
  RunningStats::State s;
  s.count = r.i64();
  s.mean = r.f64();
  s.m2 = r.f64();
  s.min = r.f64();
  s.max = r.f64();
  return s;
}

void encode_cell(ByteWriter& w, const CellUpdate& c) {
  w.u64(c.flat_index);
  w.str(c.scenario);
  w.str(c.algo);
  w.str(c.noise);
  w.u8(static_cast<std::uint8_t>(c.engine));
  w.u32(static_cast<std::uint32_t>(c.stats.size()));
  for (const auto& s : c.stats) encode_state(w, s);
}

CellUpdate decode_cell(ByteReader& r) {
  CellUpdate c;
  c.flat_index = r.u64();
  c.scenario = r.str();
  c.algo = r.str();
  c.noise = r.str();
  c.engine = decode_enum<Engine>(r.u8(), 2, "Engine");
  const std::uint32_t n = r.u32();
  c.stats.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) c.stats.push_back(decode_state(r));
  return c;
}

void encode_job(ByteWriter& w, const JobSpec& j) {
  w.strings(j.scenarios);
  w.u32(static_cast<std::uint32_t>(j.algos.size()));
  for (const JobAlgo& a : j.algos) {
    w.str(a.name);
    w.f64(a.gamma);
    w.f64(a.epsilon);
  }
  w.u8(static_cast<std::uint8_t>(j.noise.kind));
  w.f64(j.noise.lambda);
  w.f64(j.noise.gamma_ad);
  w.str(j.noise.adversary);
  w.u32(static_cast<std::uint32_t>(j.demands.size()));
  for (const Count d : j.demands) w.i64(d);
  w.i64(j.n_ants);
  w.i64(j.rounds);
  w.u64(j.seed);
  w.i64(j.replicates);
  w.u8(static_cast<std::uint8_t>(j.engine));
  w.u8(static_cast<std::uint8_t>(j.sampling));
  w.u8(static_cast<std::uint8_t>(j.initial));
  w.f64(j.metrics_gamma);
  w.strings(j.metrics);
}

JobSpec decode_job(ByteReader& r) {
  JobSpec j;
  j.scenarios = r.strings();
  const std::uint32_t n_algos = r.u32();
  j.algos.reserve(n_algos);
  for (std::uint32_t i = 0; i < n_algos; ++i) {
    JobAlgo a;
    a.name = r.str();
    a.gamma = r.f64();
    a.epsilon = r.f64();
    j.algos.push_back(std::move(a));
  }
  j.noise.kind = decode_enum<NoiseKind>(r.u8(), 2, "NoiseKind");
  j.noise.lambda = r.f64();
  j.noise.gamma_ad = r.f64();
  j.noise.adversary = r.str();
  const std::uint32_t n_demands = r.u32();
  j.demands.reserve(n_demands);
  for (std::uint32_t i = 0; i < n_demands; ++i) j.demands.push_back(r.i64());
  j.n_ants = r.i64();
  j.rounds = r.i64();
  j.seed = r.u64();
  j.replicates = r.i64();
  j.engine = decode_enum<Engine>(r.u8(), 2, "Engine");
  j.sampling = decode_enum<SamplingMode>(r.u8(), 1, "SamplingMode");
  j.initial = decode_enum<InitialKind>(r.u8(), 3, "InitialKind");
  j.metrics_gamma = r.f64();
  j.metrics = r.strings();
  return j;
}

struct PayloadEncoder {
  ByteWriter w;

  void operator()(const SubmitJob& m) { encode_job(w, m.job); }
  void operator()(const JobAccepted& m) {
    w.u64(m.job_id);
    w.u64(m.config_hash);
    w.u64(m.total_cells);
    w.i64(m.replicates);
  }
  void operator()(const JobRejected& m) { w.str(m.reason); }
  void operator()(const Subscribe& m) { w.u64(m.job_id); }
  void operator()(const Snapshot& m) {
    w.u64(m.job_id);
    w.u8(static_cast<std::uint8_t>(m.state));
    w.u64(m.config_hash);
    w.u64(m.cells_total);
    w.i64(m.replicates);
    w.strings(m.metrics);
    w.u32(static_cast<std::uint32_t>(m.cells.size()));
    for (const CellUpdate& c : m.cells) encode_cell(w, c);
    w.i64(m.replicates_done);
    w.u64(m.steals);
  }
  void operator()(const MetricDelta& m) {
    w.u64(m.job_id);
    encode_cell(w, m.cell);
  }
  void operator()(const ProgressDelta& m) {
    w.u64(m.job_id);
    w.u64(m.flat_index);
    w.u64(m.cells_done);
    w.u64(m.cells_total);
    w.u64(m.cells_in_flight);
    w.i64(m.replicates_done);
    w.u64(m.steals);
  }
  void operator()(const JobDone& m) {
    w.u64(m.job_id);
    w.u8(m.ok);
    w.u64(m.config_hash);
    w.u64(m.result_checksum);
    w.str(m.error);
  }
  void operator()(const ErrorMsg& m) {
    w.u32(m.code);
    w.str(m.message);
  }
  void operator()(const LeaseRequest& m) { w.str(m.worker); }
  void operator()(const LeaseGrant& m) {
    w.u64(m.lease_id);
    w.u64(m.config_hash);
    w.u64(m.first_cell);
    w.u64(m.cell_count);
    w.u64(m.deadline_ms);
    w.u8(m.done);
    encode_job(w, m.job);
  }
  void operator()(const CellResult& m) {
    w.u64(m.lease_id);
    w.u64(m.config_hash);
    encode_cell(w, m.cell);
  }
  void operator()(const LeaseRevoked& m) {
    w.u64(m.lease_id);
    w.str(m.reason);
  }
  void operator()(const CancelJob& m) { w.u64(m.job_id); }
};

Message decode_payload(MsgType type, ByteReader& r) {
  switch (type) {
    case MsgType::kSubmitJob:
      return SubmitJob{decode_job(r)};
    case MsgType::kJobAccepted: {
      JobAccepted m;
      m.job_id = r.u64();
      m.config_hash = r.u64();
      m.total_cells = r.u64();
      m.replicates = r.i64();
      return m;
    }
    case MsgType::kJobRejected:
      return JobRejected{r.str()};
    case MsgType::kSubscribe:
      return Subscribe{r.u64()};
    case MsgType::kSnapshot: {
      Snapshot m;
      m.job_id = r.u64();
      m.state = decode_enum<JobState>(r.u8(), 2, "JobState");
      m.config_hash = r.u64();
      m.cells_total = r.u64();
      m.replicates = r.i64();
      m.metrics = r.strings();
      const std::uint32_t n = r.u32();
      m.cells.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) m.cells.push_back(decode_cell(r));
      m.replicates_done = r.i64();
      m.steals = r.u64();
      return m;
    }
    case MsgType::kMetricDelta: {
      MetricDelta m;
      m.job_id = r.u64();
      m.cell = decode_cell(r);
      return m;
    }
    case MsgType::kProgressDelta: {
      ProgressDelta m;
      m.job_id = r.u64();
      m.flat_index = r.u64();
      m.cells_done = r.u64();
      m.cells_total = r.u64();
      m.cells_in_flight = r.u64();
      m.replicates_done = r.i64();
      m.steals = r.u64();
      return m;
    }
    case MsgType::kJobDone: {
      JobDone m;
      m.job_id = r.u64();
      m.ok = r.u8();
      m.config_hash = r.u64();
      m.result_checksum = r.u64();
      m.error = r.str();
      return m;
    }
    case MsgType::kError: {
      ErrorMsg m;
      m.code = r.u32();
      m.message = r.str();
      return m;
    }
    case MsgType::kLeaseRequest:
      return LeaseRequest{r.str()};
    case MsgType::kLeaseGrant: {
      LeaseGrant m;
      m.lease_id = r.u64();
      m.config_hash = r.u64();
      m.first_cell = r.u64();
      m.cell_count = r.u64();
      m.deadline_ms = r.u64();
      m.done = r.u8();
      m.job = decode_job(r);
      return m;
    }
    case MsgType::kCellResult: {
      CellResult m;
      m.lease_id = r.u64();
      m.config_hash = r.u64();
      m.cell = decode_cell(r);
      return m;
    }
    case MsgType::kLeaseRevoked: {
      LeaseRevoked m;
      m.lease_id = r.u64();
      m.reason = r.str();
      return m;
    }
    case MsgType::kCancelJob:
      return CancelJob{r.u64()};
  }
  throw ProtocolUnknownTypeError("unknown frame type " +
                                 std::to_string(static_cast<std::uint32_t>(
                                     type)));
}

}  // namespace

MsgType message_type(const Message& m) {
  return static_cast<MsgType>(m.index() + 1);  // variant order == MsgType
}

std::vector<std::uint8_t> encode_payload(const Message& m) {
  PayloadEncoder enc;
  std::visit(enc, m);
  return enc.w.take();
}

std::vector<std::uint8_t> wrap_frame(MsgType type, std::uint32_t seq,
                                     std::span<const std::uint8_t> payload,
                                     std::uint32_t flags) {
  std::vector<std::uint8_t> frame(kFrameHeaderBytes + payload.size() +
                                  kFrameChecksumBytes);
  write_u32le(frame.data(), static_cast<std::uint32_t>(type));
  write_u32le(frame.data() + 4, flags);
  write_u32le(frame.data() + 8, static_cast<std::uint32_t>(payload.size()));
  write_u32le(frame.data() + 12, seq);
  if (!payload.empty()) {
    std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
  const std::uint64_t sum = frame_checksum(
      {frame.data(), kFrameHeaderBytes + payload.size()});
  write_u64le(frame.data() + kFrameHeaderBytes + payload.size(), sum);
  return frame;
}

std::vector<std::uint8_t> encode_frame(const Message& m, std::uint32_t seq,
                                       std::uint32_t flags) {
  return wrap_frame(message_type(m), seq, encode_payload(m), flags);
}

std::optional<Frame> try_decode_frame(std::span<const std::uint8_t> buf,
                                      std::size_t* consumed) {
  if (buf.size() < kFrameHeaderBytes) return std::nullopt;
  const std::uint32_t length = read_u32le(buf.data() + 8);
  // The oversize gate runs as soon as the header is visible: a reader must
  // never wait for (or buffer) a body a damaged length field promises.
  if (length > kMaxFramePayload) {
    throw ProtocolOversizeError(
        "oversized frame: header declares " + std::to_string(length) +
        " payload bytes, bound is " + std::to_string(kMaxFramePayload));
  }
  const std::size_t total =
      kFrameHeaderBytes + length + kFrameChecksumBytes;
  if (buf.size() < total) return std::nullopt;

  const std::uint64_t expect = frame_checksum(
      buf.subspan(0, kFrameHeaderBytes + length));
  const std::uint64_t got =
      read_u64le(buf.data() + kFrameHeaderBytes + length);
  if (expect != got) {
    throw ProtocolChecksumError("frame checksum mismatch");
  }

  Frame frame;
  frame.header.type = static_cast<MsgType>(read_u32le(buf.data()));
  frame.header.flags = read_u32le(buf.data() + 4);
  frame.header.length = length;
  frame.header.seq = read_u32le(buf.data() + 12);
  frame.payload.assign(buf.begin() + kFrameHeaderBytes,
                       buf.begin() + kFrameHeaderBytes + length);
  if (consumed != nullptr) *consumed = total;
  return frame;
}

Frame decode_frame(std::span<const std::uint8_t> buf, std::size_t* consumed) {
  std::size_t used = 0;
  std::optional<Frame> frame = try_decode_frame(buf, &used);
  if (!frame.has_value()) {
    throw ProtocolTruncatedError(
        "truncated frame: buffer holds " + std::to_string(buf.size()) +
        " bytes, a complete frame needs more");
  }
  if (consumed != nullptr) *consumed = used;
  return *std::move(frame);
}

Message decode_message(const Frame& frame) {
  const std::uint32_t raw = static_cast<std::uint32_t>(frame.header.type);
  if (raw < 1 ||
      raw > static_cast<std::uint32_t>(MsgType::kCancelJob)) {
    throw ProtocolUnknownTypeError("unknown frame type " +
                                   std::to_string(raw));
  }
  ByteReader r(frame.payload);
  Message m = decode_payload(frame.header.type, r);
  if (r.consumed() != frame.payload.size()) {
    throw ProtocolTornPayloadError(
        "torn payload: decode consumed " + std::to_string(r.consumed()) +
        " of " + std::to_string(frame.payload.size()) + " declared bytes");
  }
  return m;
}

}  // namespace antalloc
