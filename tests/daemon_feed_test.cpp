// End-to-end daemon loopback: submit a churn-family campaign over the wire,
// subscribe, reassemble the snapshot+delta stream, and require the rebuilt
// CampaignResult BYTE-identical to an offline run_campaign of the same spec
// — same campaign_config_hash, same Welford accumulator bits, same CSV.
// Also pins the late-subscriber replay path ("fetch" = subscribe after the
// job finished) and the rejection/error paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "rng/splitmix.h"
#include "sim/campaign.h"
#include "testing_util.h"

namespace antalloc {
namespace {

using test_util::expect_stats_identical;

// The wire twin of testing_util's churn matrix: lifecycle scenarios with
// uneven per-cell cost, small enough to finish in well under a second.
JobSpec churn_job() {
  JobSpec job;
  job.scenarios = {"task-churn", "constant"};
  job.algos = {JobAlgo{.name = "ant", .gamma = 0.05},
               JobAlgo{.name = "trivial", .gamma = 0.05}};
  job.noise = JobNoise{.kind = NoiseKind::kSigmoid, .lambda = 1.0};
  job.demands = {Count{120}, Count{80}, Count{60}};
  job.n_ants = 600;
  job.rounds = 300;
  job.seed = 42;
  job.replicates = 4;
  job.initial = InitialKind::kUniform;
  return job;
}

// Drives one submit+subscribe to completion and returns the assembler.
FeedAssembler submit_and_stream(DaemonClient& client, const JobSpec& job,
                                JobAccepted* accepted_out = nullptr) {
  client.send(Message{SubmitJob{.job = job}});
  const Message reply = client.recv();
  const auto* accepted = std::get_if<JobAccepted>(&reply);
  EXPECT_NE(accepted, nullptr)
      << (std::holds_alternative<JobRejected>(reply)
              ? std::get<JobRejected>(reply).reason
              : "unexpected reply type");
  if (accepted == nullptr) return {};
  if (accepted_out != nullptr) *accepted_out = *accepted;

  client.send(Message{Subscribe{.job_id = accepted->job_id}});
  FeedAssembler assembler;
  while (!assembler.fold(client.recv())) {
  }
  return assembler;
}

void expect_result_bit_identical(const CampaignResult& a,
                                 const CampaignResult& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  EXPECT_EQ(a.metrics, b.metrics);
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    const CampaignCell& x = a.cells[i];
    const CampaignCell& y = b.cells[i];
    EXPECT_EQ(x.flat_index, y.flat_index);
    EXPECT_EQ(x.scenario, y.scenario);
    EXPECT_EQ(x.algo, y.algo);
    EXPECT_EQ(x.noise, y.noise);
    EXPECT_EQ(x.engine, y.engine);
    ASSERT_EQ(x.metric_stats.size(), y.metric_stats.size());
    for (std::size_t k = 0; k < x.metric_stats.size(); ++k) {
      expect_stats_identical(x.metric_stats[k], y.metric_stats[k]);
    }
  }
  EXPECT_EQ(a.to_csv(), b.to_csv());
}

TEST(DaemonFeed, WireJobReassemblesBitIdenticalToOfflineRun) {
  const JobSpec job = churn_job();
  // The offline reference: same spec through the same builder the daemon
  // uses — the single construction path that makes the comparison byte-for-
  // byte rather than approximate.
  const CampaignConfig offline_cfg = campaign_from_job(job);
  const CampaignResult offline = run_campaign(offline_cfg);

  DaemonServer server;
  server.start();
  DaemonClient client("127.0.0.1", server.port());

  JobAccepted accepted;
  FeedAssembler assembler = submit_and_stream(client, job, &accepted);

  // The daemon built the exact config a batch run builds.
  EXPECT_EQ(accepted.config_hash, campaign_config_hash(offline_cfg));
  EXPECT_EQ(accepted.total_cells, offline.cells.size());
  EXPECT_EQ(accepted.replicates, job.replicates);

  // Snapshot + deltas compose to the complete cell set, regardless of how
  // far the job had progressed when the subscription landed.
  ASSERT_TRUE(assembler.done());
  EXPECT_EQ(assembler.cells_seen(), offline.cells.size());
  ASSERT_TRUE(assembler.snapshot().has_value());
  EXPECT_EQ(assembler.snapshot()->config_hash, accepted.config_hash);
  EXPECT_EQ(assembler.snapshot()->metrics, offline.metrics);

  const JobDone& done = *assembler.job_done();
  EXPECT_EQ(done.ok, 1);
  EXPECT_EQ(done.config_hash, accepted.config_hash);
  EXPECT_EQ(done.error, "");
  EXPECT_EQ(done.result_checksum, rng::hash_string(offline.to_csv()));

  // The reassembled result is the offline result, bit for bit.
  EXPECT_TRUE(assembler.verify());
  expect_result_bit_identical(assembler.result(), offline);

  const auto stats = server.stats();
  EXPECT_EQ(stats.jobs_accepted, 1u);
  EXPECT_EQ(stats.jobs_rejected, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  server.stop();
}

TEST(DaemonFeed, LateSubscriberGetsFullReplay) {
  const JobSpec job = churn_job();
  DaemonServer server;
  server.start();

  std::uint64_t job_id = 0;
  FeedAssembler live;
  {
    DaemonClient client("127.0.0.1", server.port());
    JobAccepted accepted;
    live = submit_and_stream(client, job, &accepted);
    job_id = accepted.job_id;
  }
  ASSERT_TRUE(live.done());

  // A fresh connection subscribing AFTER completion gets the final snapshot
  // (state kDone, every cell) plus an immediate JobDone — the fetch path.
  DaemonClient fetcher("127.0.0.1", server.port());
  fetcher.send(Message{Subscribe{.job_id = job_id}});
  FeedAssembler replay;
  while (!replay.fold(fetcher.recv())) {
  }
  ASSERT_TRUE(replay.snapshot().has_value());
  EXPECT_EQ(replay.snapshot()->state, JobState::kDone);
  EXPECT_EQ(replay.snapshot()->cells.size(), replay.cells_seen());
  EXPECT_TRUE(replay.verify());
  expect_result_bit_identical(replay.result(), live.result());
  EXPECT_EQ(replay.job_done()->result_checksum,
            live.job_done()->result_checksum);
  server.stop();
}

TEST(DaemonFeed, TwoSubscribersSeeTheSameStream) {
  const JobSpec job = churn_job();
  DaemonServer server;
  server.start();

  DaemonClient submitter("127.0.0.1", server.port());
  submitter.send(Message{SubmitJob{.job = job}});
  const Message reply = submitter.recv();
  const auto& accepted = std::get<JobAccepted>(reply);

  // Second subscriber on its own connection, racing the job.
  DaemonClient watcher("127.0.0.1", server.port());
  watcher.send(Message{Subscribe{.job_id = accepted.job_id}});
  submitter.send(Message{Subscribe{.job_id = accepted.job_id}});

  FeedAssembler a;
  while (!a.fold(submitter.recv())) {
  }
  FeedAssembler b;
  while (!b.fold(watcher.recv())) {
  }
  EXPECT_TRUE(a.verify());
  EXPECT_TRUE(b.verify());
  expect_result_bit_identical(a.result(), b.result());
  server.stop();
}

TEST(DaemonFeed, UnknownScenarioIsRejectedWithReason) {
  DaemonServer server;
  server.start();
  DaemonClient client("127.0.0.1", server.port());

  JobSpec job = churn_job();
  job.scenarios = {"no-such-family"};
  client.send(Message{SubmitJob{.job = job}});
  const Message reply = client.recv();
  ASSERT_TRUE(std::holds_alternative<JobRejected>(reply));
  EXPECT_NE(std::get<JobRejected>(reply).reason.find("no-such-family"),
            std::string::npos);
  EXPECT_EQ(server.stats().jobs_rejected, 1u);
  EXPECT_EQ(server.stats().jobs_accepted, 0u);
  server.stop();
}

TEST(DaemonFeed, UnknownAlgoAndBadNumbersAreRejected) {
  DaemonServer server;
  server.start();
  DaemonClient client("127.0.0.1", server.port());

  JobSpec bad_algo = churn_job();
  bad_algo.algos = {JobAlgo{.name = "no-such-algo", .gamma = 0.05}};
  client.send(Message{SubmitJob{.job = bad_algo}});
  ASSERT_TRUE(std::holds_alternative<JobRejected>(client.recv()));

  JobSpec bad_reps = churn_job();
  bad_reps.replicates = 0;
  client.send(Message{SubmitJob{.job = bad_reps}});
  ASSERT_TRUE(std::holds_alternative<JobRejected>(client.recv()));

  JobSpec bad_metric = churn_job();
  bad_metric.metrics = {"no-such-metric"};
  client.send(Message{SubmitJob{.job = bad_metric}});
  ASSERT_TRUE(std::holds_alternative<JobRejected>(client.recv()));

  // The connection survives rejections: a good job still goes through.
  JobSpec good = churn_job();
  client.send(Message{SubmitJob{.job = good}});
  EXPECT_TRUE(std::holds_alternative<JobAccepted>(client.recv()));
  EXPECT_EQ(server.stats().jobs_rejected, 3u);
  server.stop();
}

TEST(DaemonFeed, UnknownJobIdGetsError404) {
  DaemonServer server;
  server.start();
  DaemonClient client("127.0.0.1", server.port());
  client.send(Message{Subscribe{.job_id = 9999}});
  const Message reply = client.recv();
  ASSERT_TRUE(std::holds_alternative<ErrorMsg>(reply));
  EXPECT_EQ(std::get<ErrorMsg>(reply).code, 404u);
  server.stop();
}

TEST(DaemonFeed, AdversarialNoiseTravelsTheWire) {
  // A second noise axis value through the full stack: adv noise names enter
  // campaign_config_hash via the same noise_spec_from on both sides.
  JobSpec job = churn_job();
  job.scenarios = {"constant"};
  job.noise = JobNoise{.kind = NoiseKind::kAdv,
                       .gamma_ad = 0.02,
                       .adversary = "alternating"};
  job.replicates = 2;

  const CampaignResult offline = run_campaign(campaign_from_job(job));
  ASSERT_FALSE(offline.cells.empty());
  EXPECT_EQ(offline.cells[0].noise, "adv(alternating)");

  DaemonServer server;
  server.start();
  DaemonClient client("127.0.0.1", server.port());
  FeedAssembler assembler = submit_and_stream(client, job);
  ASSERT_TRUE(assembler.done());
  EXPECT_TRUE(assembler.verify());
  expect_result_bit_identical(assembler.result(), offline);
  server.stop();
}

TEST(DaemonFeed, UnknownAdversaryIsRejected) {
  DaemonServer server;
  server.start();
  DaemonClient client("127.0.0.1", server.port());
  JobSpec job = churn_job();
  job.noise = JobNoise{.kind = NoiseKind::kAdv, .adversary = "no-such-adv"};
  client.send(Message{SubmitJob{.job = job}});
  const Message reply = client.recv();
  ASSERT_TRUE(std::holds_alternative<JobRejected>(reply));
  EXPECT_NE(std::get<JobRejected>(reply).reason.find("no-such-adv"),
            std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace antalloc
