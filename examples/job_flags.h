// Shared flag → JobSpec parsing for the daemon-facing binaries.
//
// antalloc_cli's campaign mode and antalloc_client's submit subcommand read
// the SAME flags into the SAME declarative JobSpec, and both sides then go
// through campaign_from_job (net/server.h) — one construction path, which
// is what makes a daemon-submitted job and a batch CLI run of the same
// flags share a campaign_config_hash and produce byte-identical rows (the
// CI daemon smoke job cmp's exactly this).
#pragma once

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "agent/agent_sim.h"
#include "core/critical_value.h"
#include "core/demand.h"
#include "io/args.h"
#include "net/protocol.h"
#include "sim/experiment.h"
#include "sim/scenario.h"

namespace antalloc {

inline std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

// Noise + learning-rate flags, with the gamma defaulting the CLI has always
// applied: sigmoid → 1.5× the critical value at lambda (capped at 1/16.5),
// adv → 1.5×gamma_ad (same cap), exact → 0.05. The resolved gamma is what
// enters the JobSpec, so the default never has to be recomputed serverside.
struct NoiseFlags {
  JobNoise noise{};
  double gamma = 0.0;  // resolved: always > 0 on return
  double epsilon = 0.5;
};

inline NoiseFlags parse_noise_flags(Args& args, const DemandVector& demands) {
  NoiseFlags out;
  const std::string noise = args.get_string("noise", "sigmoid");
  const std::string adversary = args.get_string("adversary", "honest");
  out.noise.lambda = args.get_double("lambda", 0.2);
  out.noise.gamma_ad = args.get_double("gamma_ad", 0.02);
  out.gamma = args.get_double("gamma", 0.0);
  out.epsilon = args.get_double("epsilon", 0.5);
  if (noise == "sigmoid") {
    out.noise.kind = NoiseKind::kSigmoid;
    if (out.gamma <= 0.0) {
      out.gamma = std::min(
          1.0 / 16.5, 1.5 * critical_value_at(out.noise.lambda, demands, 1e-6));
    }
  } else if (noise == "adv") {
    out.noise.kind = NoiseKind::kAdv;
    out.noise.adversary = adversary;
    if (out.gamma <= 0.0) {
      out.gamma = std::min(1.0 / 16.5, 1.5 * out.noise.gamma_ad);
    }
  } else if (noise == "exact") {
    out.noise.kind = NoiseKind::kExact;
    if (out.gamma <= 0.0) out.gamma = 0.05;
  } else {
    throw std::invalid_argument("unknown noise '" + noise + "'");
  }
  return out;
}

// The full campaign-shaped flag set — everything a SubmitJob carries, with
// the same flag names and defaults antalloc_cli's campaign mode has.
inline JobSpec parse_job_spec(Args& args) {
  JobSpec job;
  const auto k = static_cast<std::int32_t>(args.get_int("k", 4));
  const Count demand = args.get_int("demand", 4000);
  const DemandVector demands = uniform_demands(k, demand);
  job.demands.assign(demands.values().begin(), demands.values().end());
  job.n_ants = args.get_int("n", 1 << 16);
  job.rounds = args.get_int("rounds", 8000);
  job.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  job.replicates = args.get_int("replicates", 2);
  job.engine = parse_engine(args.get_string("engine", "auto"));
  job.sampling = parse_sampling_mode(args.get_string("sampling", "batched"));
  job.initial = parse_initial_kind(args.get_string("initial", "idle"));
  const std::string scenarios_flag = args.get_string("scenarios", "all");
  job.scenarios = scenarios_flag == "all" ? scenario_names()
                                          : split_csv(scenarios_flag);
  const NoiseFlags nf = parse_noise_flags(args, demands);
  job.noise = nf.noise;
  job.metrics_gamma = nf.gamma;
  for (const std::string& name : split_csv(args.get_string("algos", "ant"))) {
    job.algos.push_back(
        JobAlgo{.name = name, .gamma = nf.gamma, .epsilon = nf.epsilon});
  }
  job.metrics = split_csv(args.get_string("metrics", ""));
  return job;
}

}  // namespace antalloc
